"""Property-based equivalence of the cache + read-ahead I/O layer.

The block cache and the prefetcher are *physical*-path optimisations,
never semantics changes: for any corpus, segment size, admission
schedule, runner and map backend, a cached + prefetched run must produce
**byte-identical** part files, outputs and *logical*
``blocks_read``/``bytes_read`` counters versus the plain (cache-off)
run.  Physical counters are exactly what is allowed to differ — that is
the optimisation.
"""

import hashlib
import pathlib

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import ExecutionConfig
from repro.localrt.jobs import wordcount_job
from repro.localrt.output import write_output
from repro.localrt.parallel import BACKEND_NAMES
from repro.localrt.runners import FifoLocalRunner, SharedScanRunner
from repro.localrt.storage import BlockStore

WORDS = ["the", "thing", "running", "eating", "apple", "orange",
         "motion", "nation", "sad", "sunny"]
PATTERNS = ["^th.*", ".*ing$", "^[aeiou].*", ".*tion$"]

corpora = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=8).map(" ".join),
    min_size=4, max_size=20)
schedules = st.lists(st.integers(0, 4), min_size=1, max_size=3)


def _digest(directory: pathlib.Path) -> dict[str, str]:
    """Byte-level fingerprint of every part file in ``directory``."""
    return {path.name: hashlib.sha256(path.read_bytes()).hexdigest()
            for path in sorted(directory.glob("part-*"))}


def _jobs(n):
    return [wordcount_job(f"w{i}", PATTERNS[i % len(PATTERNS)])
            for i in range(n)]


def _run_variant(tmp_path_factory, directory, backend, runner_kind, seg,
                 arrival_map, n_jobs, *, cache_bytes, prefetch_depth):
    """One (runner, backend, cache-config) execution over ``directory``.

    A fresh BlockStore per variant keeps every counter independent.
    """
    store = BlockStore(directory)
    config = ExecutionConfig(
        map_backend=backend, map_workers=2,
        cache_capacity_bytes=cache_bytes or None,
        prefetch_depth=prefetch_depth if cache_bytes else 0,
        blocks_per_segment=seg)
    if runner_kind == "fifo":
        report = FifoLocalRunner(store, config).run(_jobs(n_jobs))
    else:
        report = SharedScanRunner(store, config).run(
            _jobs(n_jobs), arrival_iterations=arrival_map)
    per_job: dict[str, dict[str, str]] = {}
    outputs: dict[str, list] = {}
    for job_id, result in report.results.items():
        out_dir = tmp_path_factory.mktemp(f"out-{runner_kind}-{backend}")
        write_output(result, out_dir)
        per_job[job_id] = _digest(out_dir)
        outputs[job_id] = sorted(result.output)
    return {
        "digests": per_job,
        "outputs": outputs,
        "logical": (report.blocks_read, report.bytes_read,
                    report.iterations),
        "counters": [list(report.results[j].counters)
                     for j in sorted(report.results)],
    }


@given(corpus=corpora, seg=st.integers(1, 4), arrivals=schedules,
       block_size=st.integers(20, 120), prefetch_depth=st.integers(1, 6))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_cache_and_prefetch_bit_identical(tmp_path_factory, corpus, seg,
                                          arrivals, block_size,
                                          prefetch_depth):
    directory = tmp_path_factory.mktemp("cache-corpus")
    store = BlockStore.create(directory, corpus, block_size_bytes=block_size)
    # Cache sized to ~half the corpus forces evictions in some examples
    # while still producing hits; correctness must hold either way.
    half_cache = max(1, store.total_bytes // 2)
    arrival_map = {f"w{i}": a for i, a in enumerate(arrivals)}
    n_jobs = len(arrivals)

    for runner_kind in ("fifo", "shared"):
        for backend in BACKEND_NAMES:
            baseline = _run_variant(
                tmp_path_factory, directory, backend, runner_kind, seg,
                arrival_map, n_jobs, cache_bytes=0, prefetch_depth=0)
            for cache_bytes, depth in ((store.total_bytes * 2, prefetch_depth),
                                       (half_cache, prefetch_depth)):
                accel = _run_variant(
                    tmp_path_factory, directory, backend, runner_kind, seg,
                    arrival_map, n_jobs, cache_bytes=cache_bytes,
                    prefetch_depth=depth)
                label = f"{runner_kind}/{backend}/cache={cache_bytes}"
                assert accel["digests"] == baseline["digests"], \
                    f"{label}: part files diverge"
                assert accel["outputs"] == baseline["outputs"], \
                    f"{label}: outputs diverge"
                assert accel["logical"] == baseline["logical"], \
                    f"{label}: logical I/O counters diverge"
                assert accel["counters"] == baseline["counters"], \
                    f"{label}: job counters diverge"
