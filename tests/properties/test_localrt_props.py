"""Property-based equivalence of FIFO vs shared-scan execution.

For any small corpus, any segment size and any admission schedule, the
shared-scan runner must produce **exactly** the outputs of the isolated
FIFO runner — scan sharing is an execution-strategy change, never a
semantics change.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import ExecutionConfig
from repro.localrt.jobs import wordcount_job
from repro.localrt.runners import FifoLocalRunner, SharedScanRunner
from repro.localrt.storage import BlockStore

WORDS = ["the", "thing", "running", "eating", "apple", "orange",
         "motion", "nation", "sad", "sunny"]
PATTERNS = ["^th.*", ".*ing$", "^[aeiou].*", ".*tion$"]

corpora = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=8).map(" ".join),
    min_size=4, max_size=30)
schedules = st.lists(st.integers(0, 6), min_size=1, max_size=4)


@given(corpus=corpora, seg=st.integers(1, 5), arrivals=schedules,
       block_size=st.integers(20, 120))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_shared_scan_equals_fifo(tmp_path_factory, corpus, seg, arrivals,
                                 block_size):
    directory = tmp_path_factory.mktemp("prop-corpus")
    store = BlockStore.create(directory, corpus, block_size_bytes=block_size)

    def jobs():
        return [wordcount_job(f"w{i}", PATTERNS[i % len(PATTERNS)])
                for i in range(len(arrivals))]

    fifo = FifoLocalRunner(store).run(jobs())
    shared = SharedScanRunner(store, ExecutionConfig(blocks_per_segment=seg)).run(
        jobs(), arrival_iterations={f"w{i}": a for i, a in enumerate(arrivals)})
    for i in range(len(arrivals)):
        job_id = f"w{i}"
        assert (sorted(fifo.results[job_id].output)
                == sorted(shared.results[job_id].output))
    # I/O bound: shared never reads more than FIFO, never less than one scan.
    assert shared.bytes_read <= fifo.bytes_read
    assert shared.bytes_read >= store.total_bytes
