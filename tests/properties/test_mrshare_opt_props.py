"""Property-based optimality proof for the MRShare grouping DP.

For small n we can enumerate *every* consecutive partition and verify the
DP's plan is never beaten, for both objectives, under arbitrary sorted
arrival vectors.
"""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.paperconfig import paper_cost_model
from repro.mapreduce.profile import normal_wordcount
from repro.schedulers.mrshare_opt import optimal_grouping

GEOMETRY = dict(profile=normal_wordcount(), cost=paper_cost_model(),
                num_blocks=320, block_mb=64.0, map_slots=40)

arrival_vectors = st.lists(
    st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    min_size=1, max_size=6).map(sorted)


def all_consecutive_partitions(n: int):
    """Every way to split 0..n-1 into consecutive groups."""
    for cut_count in range(n):
        for cuts in combinations(range(1, n), cut_count):
            bounds = [0, *cuts, n]
            yield [tuple(range(a, b)) for a, b in zip(bounds, bounds[1:])]


def evaluate(groups, arrivals, objective):
    cost, profile = GEOMETRY["cost"], GEOMETRY["profile"]
    finish, total_response = 0.0, 0.0
    for group in groups:
        ready = max(arrivals[j] for j in group)
        makespan = cost.combined_job_makespan_s(
            profile, len(group), GEOMETRY["num_blocks"],
            GEOMETRY["block_mb"], GEOMETRY["map_slots"])
        finish = max(finish, ready) + makespan
        total_response += sum(finish - arrivals[j] for j in group)
    return finish if objective == "tet" else total_response


@given(arrivals=arrival_vectors)
@settings(max_examples=40, deadline=None)
def test_dp_is_optimal_for_tet(arrivals):
    plan = optimal_grouping(arrivals, objective="tet", **GEOMETRY)
    best = min(evaluate(groups, arrivals, "tet")
               for groups in all_consecutive_partitions(len(arrivals)))
    assert plan.predicted_cost <= best + 1e-6
    assert evaluate(plan.groups, arrivals, "tet") <= best + 1e-6


@given(arrivals=arrival_vectors)
@settings(max_examples=40, deadline=None)
def test_dp_is_optimal_for_art(arrivals):
    plan = optimal_grouping(arrivals, objective="art", **GEOMETRY)
    best = min(evaluate(groups, arrivals, "art")
               for groups in all_consecutive_partitions(len(arrivals)))
    assert plan.predicted_cost <= best + 1e-6
    assert evaluate(plan.groups, arrivals, "art") <= best + 1e-6


@given(arrivals=arrival_vectors)
@settings(max_examples=40, deadline=None)
def test_plan_always_partitions(arrivals):
    for objective in ("tet", "art"):
        plan = optimal_grouping(arrivals, objective=objective, **GEOMETRY)
        flat = [j for g in plan.groups for j in g]
        assert flat == list(range(len(arrivals)))
