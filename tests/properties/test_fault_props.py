"""Property-based fault-injection tests.

For any failure seed and moderate failure probability, every scheduler must
complete every job with exactly one effective completion per task, and the
S3 coverage invariant must survive retries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import ClusterConfig, DfsConfig
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.faults import FaultModel
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import normal_wordcount
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.mrshare import MRShareScheduler
from repro.schedulers.s3 import S3Scheduler

PROFILE = normal_wordcount().with_(num_reduce_tasks=4, reduce_total_s=2.0)


def run_with_seed(scheduler_kind: str, seed: int, prob: float,
                  num_jobs: int, blocks: int):
    if scheduler_kind == "fifo":
        scheduler = FifoScheduler()
    elif scheduler_kind == "mrshare":
        scheduler = MRShareScheduler.single_batch(num_jobs)
    else:
        scheduler = S3Scheduler()
    driver = SimulationDriver(
        scheduler,
        cluster_config=ClusterConfig(num_nodes=6, rack_sizes=(3, 3)),
        dfs_config=DfsConfig(block_size_mb=64.0),
        cost_model=CostModel(job_submit_overhead_s=0.5, subjob_overhead_s=0.1),
        fault_model=FaultModel(task_failure_prob=prob, max_attempts=40,
                               seed=seed))
    driver.register_file("f", 64.0 * blocks)
    jobs = [JobSpec(job_id=f"j{i}", file_name="f", profile=PROFILE)
            for i in range(num_jobs)]
    driver.submit_all(jobs, [3.0 * i for i in range(num_jobs)])
    return driver.run()


@given(seed=st.integers(0, 10_000),
       scheduler_kind=st.sampled_from(["fifo", "mrshare", "s3"]),
       prob=st.floats(0.0, 0.25),
       num_jobs=st.integers(1, 3),
       blocks=st.integers(4, 20))
@settings(max_examples=30, deadline=None)
def test_all_jobs_complete_under_any_failure_seed(seed, scheduler_kind, prob,
                                                  num_jobs, blocks):
    result = run_with_seed(scheduler_kind, seed, prob, num_jobs, blocks)
    assert result.all_complete
    # Exactly one effective completion per map task identity.
    finishes = result.trace.filter(kind="task.finish.map")
    tasks = {r.subject.rsplit(".attempt_", 1)[0] for r in finishes}
    assert len(tasks) == len(finishes)


@given(seed=st.integers(0, 10_000), prob=st.floats(0.05, 0.3))
@settings(max_examples=20, deadline=None)
def test_s3_sharing_accounting_survives_retries(seed, prob):
    """Per-job map-task counts stay exact (one per block) under failures."""
    result = run_with_seed("s3", seed, prob, num_jobs=2, blocks=12)
    for job_id in ("j0", "j1"):
        assert result.job_map_tasks[job_id] == 12
