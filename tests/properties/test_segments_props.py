"""Property-based tests for the segment plan (circular-scan arithmetic)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import DfsConfig
from repro.dfs.namenode import NameNode
from repro.dfs.placement import RoundRobinPlacement
from repro.dfs.segments import SegmentPlan

geometry = st.tuples(st.integers(1, 200), st.integers(1, 50))


def make_plan(num_blocks, seg):
    nn = NameNode(DfsConfig(block_size_mb=64.0),
                  RoundRobinPlacement(["n0", "n1", "n2"]))
    return SegmentPlan(nn.create_file("f", 64.0 * num_blocks), seg)


@given(geometry)
@settings(max_examples=60)
def test_segments_partition_blocks(geo):
    num_blocks, seg = geo
    plan = make_plan(num_blocks, seg)
    seen = [b for segment in plan.segments for b in segment.block_indices]
    assert seen == list(range(num_blocks))


@given(geometry)
@settings(max_examples=60)
def test_only_last_segment_ragged(geo):
    num_blocks, seg = geo
    plan = make_plan(num_blocks, seg)
    sizes = [s.num_blocks for s in plan.segments]
    assert all(size == seg for size in sizes[:-1])
    assert 1 <= sizes[-1] <= seg


@given(geometry, st.integers(0, 1000))
@settings(max_examples=60)
def test_circular_order_is_rotation(geo, start_seed):
    num_blocks, seg = geo
    plan = make_plan(num_blocks, seg)
    start = start_seed % plan.num_segments
    order = plan.circular_order(start)
    assert sorted(order) == list(range(plan.num_segments))
    assert order == [(start + i) % plan.num_segments
                     for i in range(plan.num_segments)]


@given(geometry, st.integers(0, 1000), st.integers(0, 1000))
@settings(max_examples=60)
def test_segments_between_bounds(geo, a, b):
    num_blocks, seg = geo
    plan = make_plan(num_blocks, seg)
    start, current = a % plan.num_segments, b % plan.num_segments
    between = plan.segments_between(start, current)
    assert 1 <= between <= plan.num_segments
    # The final segment in circular order is exactly one before start.
    assert plan.is_last_segment_for(start, current) == (
        between == plan.num_segments)


@given(geometry, st.integers(0, 10_000))
@settings(max_examples=60)
def test_block_to_segment_consistent(geo, block_seed):
    num_blocks, seg = geo
    plan = make_plan(num_blocks, seg)
    block = block_seed % num_blocks
    segment_index = plan.segment_of_block(block)
    assert block in plan.segment(segment_index).block_indices
