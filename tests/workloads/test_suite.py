"""Workload suite registry tests."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.suite import (
    SuiteRegistry,
    WorkloadSuite,
    build_default_registry,
    suites,
)


def test_default_registry_has_all_fig4_suites():
    assert suites.names() == sorted([
        "sparse-normal", "dense-normal", "sparse-heavy",
        "sparse-normal-128mb", "sparse-normal-32mb", "sparse-selection"])


def test_materialize_produces_matched_jobs_and_arrivals():
    jobs, arrivals = suites.get("sparse-normal").materialize()
    assert len(jobs) == len(arrivals) == 10
    assert arrivals == sorted(arrivals)
    assert len({j.job_id for j in jobs}) == 10


def test_materialize_returns_fresh_objects():
    suite = suites.get("dense-normal")
    jobs1, _ = suite.materialize()
    jobs2, _ = suite.materialize()
    assert jobs1 is not jobs2


def test_block_size_overrides():
    assert suites.get("sparse-normal-128mb").block_size_mb == 128.0
    assert suites.get("sparse-normal").block_size_mb == 64.0


def test_unknown_suite():
    with pytest.raises(WorkloadError, match="unknown suite"):
        suites.get("ghost")


def test_duplicate_registration_rejected():
    registry = build_default_registry()
    suite = registry.get("sparse-normal")
    with pytest.raises(WorkloadError, match="already registered"):
        registry.register(suite)
    registry.register(suite, replace=True)  # explicit replace allowed


def test_custom_suite_runs_end_to_end(small_cluster_config, small_dfs_config,
                                      fast_profile, job_factory):
    from repro.common.config import DfsConfig
    from repro.experiments.base import run_scheduler
    from repro.schedulers.s3 import S3Scheduler

    registry = SuiteRegistry()
    registry.register(WorkloadSuite(
        name="mini",
        description="test suite",
        jobs_factory=lambda: job_factory(fast_profile, 2),
        arrivals_factory=lambda: [0.0, 1.0],
        file_name="f", file_size_mb=64.0 * 8))
    suite = registry.get("mini")
    jobs, arrivals = suite.materialize()
    metrics, _ = run_scheduler(
        S3Scheduler(), jobs, arrivals,
        file_name=suite.file_name, file_size_mb=suite.file_size_mb,
        cluster_config=small_cluster_config,
        dfs_config=DfsConfig(block_size_mb=suite.block_size_mb))
    assert metrics.num_jobs == 2


def test_mismatched_suite_rejected():
    bad = WorkloadSuite(
        name="bad", description="",
        jobs_factory=lambda: [],
        arrivals_factory=lambda: [0.0],
        file_name="f", file_size_mb=64.0)
    with pytest.raises(WorkloadError):
        bad.materialize()
