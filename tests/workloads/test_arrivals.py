"""Arrival pattern generator tests."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.arrivals import (
    dense,
    poisson,
    sparse_groups,
    uniform,
    validate_arrivals,
)


def test_dense_spacing():
    assert dense(4, 2.0) == [0.0, 2.0, 4.0, 6.0]


def test_dense_with_start():
    assert dense(2, 1.0, start=10.0) == [10.0, 11.0]


def test_dense_validation():
    with pytest.raises(WorkloadError):
        dense(0)
    with pytest.raises(WorkloadError):
        dense(3, -1.0)


def test_sparse_groups_paper_shape():
    arrivals = sparse_groups((3, 3, 4), 200.0, 60.0)
    assert len(arrivals) == 10
    assert arrivals[:3] == [0.0, 60.0, 120.0]
    assert arrivals[3:6] == [200.0, 260.0, 320.0]
    assert arrivals[6:] == [400.0, 460.0, 520.0, 580.0]


def test_sparse_groups_validation():
    with pytest.raises(WorkloadError):
        sparse_groups((), 100, 10)
    with pytest.raises(WorkloadError):
        sparse_groups((3, 0), 100, 10)
    with pytest.raises(WorkloadError):
        sparse_groups((3,), -1, 10)


def test_uniform():
    assert uniform(3, 5.0) == [0.0, 5.0, 10.0]


def test_poisson_reproducible_and_sorted():
    a = poisson(20, 10.0, seed=42)
    b = poisson(20, 10.0, seed=42)
    assert a == b
    assert a == sorted(a)
    assert a[0] == 0.0
    assert len(a) == 20


def test_poisson_mean_roughly_right():
    arrivals = poisson(500, 10.0, seed=1)
    mean_gap = (arrivals[-1] - arrivals[0]) / (len(arrivals) - 1)
    assert mean_gap == pytest.approx(10.0, rel=0.2)


def test_validate_arrivals():
    assert validate_arrivals([0.0, 1.0, 1.0]) == [0.0, 1.0, 1.0]
    with pytest.raises(WorkloadError):
        validate_arrivals([])
    with pytest.raises(WorkloadError):
        validate_arrivals([1.0, 0.5])
    with pytest.raises(WorkloadError):
        validate_arrivals([-1.0, 0.0])
