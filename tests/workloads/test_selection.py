"""Selection workload factory tests."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.selection import (
    LINEITEM_FILE,
    LINEITEM_SIZE_MB,
    selection_workload,
)


def test_geometry_matches_paper():
    assert LINEITEM_SIZE_MB == 400 * 1024  # 10GB x 40 nodes


def test_jobs_share_table():
    workload = selection_workload(10)
    jobs = workload.make_jobs()
    assert len(jobs) == 10
    assert {j.file_name for j in jobs} == {LINEITEM_FILE}
    assert all("SELECT" in j.tag for j in jobs)


def test_default_selectivity():
    assert selection_workload(1).selectivity == 0.10


def test_higher_selectivity_bigger_outputs():
    low = selection_workload(1, selectivity=0.10)
    high = selection_workload(1, selectivity=0.50)
    assert (high.profile.map_output_mb_per_input_mb
            > low.profile.map_output_mb_per_input_mb)
    assert high.profile.reduce_total_s > low.profile.reduce_total_s


def test_validation():
    with pytest.raises(WorkloadError):
        selection_workload(0)
    with pytest.raises(WorkloadError):
        selection_workload(1, selectivity=0.0)
    with pytest.raises(WorkloadError):
        selection_workload(1, selectivity=1.5)
