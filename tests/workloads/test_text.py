"""Synthetic text corpus generator tests."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.text import TextCorpusGenerator, make_vocabulary


def test_vocabulary_distinct_words():
    vocab = make_vocabulary(200, seed=1)
    assert len(vocab) == 200
    assert len(set(vocab)) == 200
    assert all(word.isalpha() for word in vocab)


def test_vocabulary_reproducible():
    assert make_vocabulary(50, seed=9) == make_vocabulary(50, seed=9)


def test_vocabulary_has_pattern_matchable_suffixes():
    vocab = make_vocabulary(500, seed=2)
    assert any(w.endswith("ing") for w in vocab)
    assert any(w.endswith("tion") for w in vocab)


def test_lines_hit_requested_volume():
    gen = TextCorpusGenerator(vocabulary_size=100, seed=3)
    total = sum(len(line) + 1 for line in gen.lines(10_000))
    assert 10_000 <= total <= 12_000


def test_lines_reproducible():
    a = list(TextCorpusGenerator(vocabulary_size=100, seed=4).lines(2_000))
    b = list(TextCorpusGenerator(vocabulary_size=100, seed=4).lines(2_000))
    assert a == b


def test_zipf_distribution_skewed():
    gen = TextCorpusGenerator(vocabulary_size=200, zipf_s=1.3, seed=5)
    counts = {}
    for line in gen.lines(50_000):
        for word in line.split():
            counts[word] = counts.get(word, 0) + 1
    frequencies = sorted(counts.values(), reverse=True)
    # Top word should be much more frequent than the median word.
    assert frequencies[0] > 10 * frequencies[len(frequencies) // 2]


def test_write_to_file(tmp_path):
    gen = TextCorpusGenerator(vocabulary_size=50, seed=6)
    path = tmp_path / "corpus.txt"
    written = gen.write(path, 5_000)
    assert path.stat().st_size == written
    assert written >= 5_000


def test_validation():
    with pytest.raises(WorkloadError):
        TextCorpusGenerator(vocabulary_size=0)
    with pytest.raises(WorkloadError):
        TextCorpusGenerator(zipf_s=1.0)
    gen = TextCorpusGenerator(vocabulary_size=10, seed=1)
    with pytest.raises(WorkloadError):
        list(gen.lines(0))
