"""Lineitem generator tests."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.tpch import (
    LINEITEM_COLUMNS,
    LineitemGenerator,
    parse_row,
    quantity_threshold_for_selectivity,
)


def test_schema_has_16_columns():
    assert len(LINEITEM_COLUMNS) == 16


def test_rows_have_all_columns():
    for row in LineitemGenerator(seed=1).rows(50):
        assert len(row.split("|")) == 16


def test_rows_reproducible():
    a = list(LineitemGenerator(seed=2).rows(20))
    b = list(LineitemGenerator(seed=2).rows(20))
    assert a == b


def test_parse_row_round_trip():
    row = next(iter(LineitemGenerator(seed=3).rows(1)))
    parsed = parse_row(row)
    assert set(parsed) == set(LINEITEM_COLUMNS)
    assert 1 <= int(parsed["l_quantity"]) <= 50
    assert float(parsed["l_extendedprice"]) > 0
    assert parsed["l_returnflag"] in {"R", "A", "N"}


def test_parse_row_malformed():
    with pytest.raises(WorkloadError):
        parse_row("a|b|c")


def test_orderkeys_monotone_nondecreasing():
    keys = [int(row.split("|")[0])
            for row in LineitemGenerator(seed=4).rows(100)]
    assert keys == sorted(keys)


def test_linenumbers_restart_per_order():
    rows = [row.split("|") for row in LineitemGenerator(seed=5).rows(200)]
    for (ok1, ln1), (ok2, ln2) in zip(
            [(r[0], int(r[3])) for r in rows],
            [(r[0], int(r[3])) for r in rows[1:]]):
        if ok1 == ok2:
            assert ln2 == ln1 + 1
        else:
            assert ln2 == 1


def test_quantity_threshold_for_selectivity():
    assert quantity_threshold_for_selectivity(0.10) == 6
    assert quantity_threshold_for_selectivity(0.50) == 26
    with pytest.raises(WorkloadError):
        quantity_threshold_for_selectivity(0.0)


def test_threshold_achieves_selectivity():
    threshold = quantity_threshold_for_selectivity(0.10)
    rows = list(LineitemGenerator(seed=6).rows(5000))
    quantity_index = LINEITEM_COLUMNS.index("l_quantity")
    selected = sum(1 for r in rows
                   if float(r.split("|")[quantity_index]) < threshold)
    assert selected / len(rows) == pytest.approx(0.10, abs=0.02)


def test_rows_for_bytes_volume():
    total = sum(len(r) + 1 for r in
                LineitemGenerator(seed=7).rows_for_bytes(30_000))
    assert 30_000 <= total <= 33_000


def test_write(tmp_path):
    path = tmp_path / "lineitem.tbl"
    written = LineitemGenerator(seed=8).write(path, 10_000)
    assert path.stat().st_size == written


def test_row_count_validation():
    with pytest.raises(WorkloadError):
        list(LineitemGenerator().rows(0))
    with pytest.raises(WorkloadError):
        list(LineitemGenerator().rows_for_bytes(0))
