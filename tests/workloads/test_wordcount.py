"""Wordcount workload factory tests."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.wordcount import (
    CORPUS_FILE,
    CORPUS_SIZE_MB,
    WordcountWorkload,
    heavy_workload,
    normal_workload,
    table1_statistics,
)


def test_corpus_geometry_matches_paper():
    assert CORPUS_SIZE_MB == 160 * 1024
    # 64MB blocks -> 2560 map tasks, as in Figure 3's caption.
    assert CORPUS_SIZE_MB / 64 == 2560


def test_normal_workload_jobs_share_file():
    jobs = normal_workload(10).make_jobs()
    assert len(jobs) == 10
    assert {j.file_name for j in jobs} == {CORPUS_FILE}
    assert len({j.job_id for j in jobs}) == 10
    # Jobs differ by pattern tag (different map functions, shared scan).
    assert len({j.tag for j in jobs}) == 10


def test_heavy_workload_uses_heavy_profile():
    assert heavy_workload(2).profile.name == "wordcount-heavy"


def test_workload_validation():
    with pytest.raises(WorkloadError):
        normal_workload(0)
    with pytest.raises(WorkloadError):
        WordcountWorkload(num_jobs=1, profile=normal_workload(1).profile,
                          file_size_mb=0)


def test_table1_statistics_match_paper():
    stats = table1_statistics()
    assert stats["map_output_records"] == pytest.approx(250e6, rel=0.02)
    assert stats["map_output_size_mb"] == pytest.approx(2.4 * 1024, rel=0.02)
    assert 60_000 <= stats["reduce_output_records"] <= 80_000
    assert stats["reduce_output_size_mb"] == pytest.approx(1.5)


def test_table1_statistics_scale_with_input():
    half = table1_statistics(input_size_mb=CORPUS_SIZE_MB / 2)
    assert half["map_output_records"] == pytest.approx(125e6, rel=0.02)


def test_table1_validation():
    with pytest.raises(WorkloadError):
        table1_statistics(input_size_mb=0)
