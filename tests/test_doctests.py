"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.common.ids
import repro.common.units
import repro.simengine.events

MODULES = [
    repro.common.units,
    repro.common.ids,
    repro.simengine.events,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted > 0
