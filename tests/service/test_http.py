"""Routed HTTP layer: handle_path routing, live server, readiness codes."""

import json
import urllib.error
import urllib.request

import pytest

from repro.common.clock import FakeClock
from repro.common.config import ExecutionConfig
from repro.common.errors import AdmissionRejected
from repro.localrt.jobs import wordcount_job
from repro.obs.live.exposition import parse_exposition
from repro.service.config import ServiceConfig
from repro.service.core import SNAPSHOT_SCHEMA_VERSION, SchedulerService
from repro.service.http import (
    EXPOSITION_CONTENT_TYPE,
    ROUTES,
    handle_path,
    render_metrics,
    start_http_server,
)


def make_service(store, **kwargs):
    kwargs.setdefault("execution", ExecutionConfig(blocks_per_segment=4))
    kwargs.setdefault("idle_poll_s", 0.005)
    clock = kwargs.pop("clock", None)
    return SchedulerService(store, ServiceConfig(**kwargs), clock=clock)


def run_to_completion(service):
    while service.step():
        pass


# ------------------------------------------------------------------ routing


def test_every_route_resolves(store):
    service = make_service(store)
    for route in ROUTES:
        status, kind, body = handle_path(service, route)
        assert status == 200, route
        assert body
        if route != "/metrics":
            json.loads(body)  # JSON endpoints parse
    service.shutdown()


def test_root_trailing_slash_and_query_normalise(store):
    service = make_service(store)
    assert handle_path(service, "/")[0] == 200  # / -> /status
    assert handle_path(service, "/status/")[0] == 200
    assert handle_path(service, "/metrics?foo=bar")[0] == 200
    service.shutdown()


def test_404_body_lists_routes(store):
    service = make_service(store)
    status, kind, body = handle_path(service, "/nope")
    assert status == 404
    assert kind == "application/json"
    payload = json.loads(body)
    assert payload["routes"] == list(ROUTES)
    assert "/nope" in payload["error"]
    service.shutdown()


def test_status_carries_schema_version(store):
    service = make_service(store)
    _, _, body = handle_path(service, "/status")
    assert json.loads(body)["schema_version"] == SNAPSHOT_SCHEMA_VERSION
    service.shutdown()


# ------------------------------------------------------------------ metrics


def test_metrics_parse_with_strict_parser(store):
    service = make_service(store)
    service.submit(wordcount_job("wc", r"alpha"), tenant="tenant_a")
    run_to_completion(service)
    status, kind, body = handle_path(service, "/metrics")
    assert status == 200 and kind == EXPOSITION_CONTENT_TYPE
    families = parse_exposition(body.decode("utf-8"))
    names = {family.name for family in families}
    assert "repro_service_ready" in names
    assert "repro_service_queue_depth" in names
    assert "repro_service_iterations_total" in names
    assert "repro_service_response_seconds" in names
    service.shutdown()


def test_metrics_byte_deterministic_across_identical_replays(store):
    def replay():
        service = make_service(store, clock=FakeClock())
        service.submit(wordcount_job("wc_a", r"alpha"), tenant="tenant_a")
        service.submit(wordcount_job("wc_b", r"beta"), tenant="tenant_b")
        run_to_completion(service)
        body = render_metrics(service)
        service.shutdown()
        return body

    assert replay() == replay()


# ------------------------------------------------------- health & readiness


def test_healthz_alive_then_dead_after_shutdown(store):
    service = make_service(store)
    status, _, body = handle_path(service, "/healthz")
    assert status == 200 and json.loads(body)["healthy"] is True
    service.shutdown()
    status, _, body = handle_path(service, "/healthz")
    assert status == 503 and json.loads(body)["healthy"] is False


def test_readyz_503_under_overload_and_recovers(store):
    service = make_service(store, max_pending=1, overload_policy="reject")
    service.submit(wordcount_job("wc", r"alpha"), tenant="tenant_a")
    with pytest.raises(AdmissionRejected):
        service.submit(wordcount_job("wc2", r"beta"), tenant="tenant_a")
    status, _, body = handle_path(service, "/readyz")
    assert status == 503
    verdict = json.loads(body)
    assert verdict["overloaded"] is True and verdict["ready"] is False
    run_to_completion(service)  # drain the queue
    status, _, body = handle_path(service, "/readyz")
    assert status == 200 and json.loads(body)["ready"] is True
    service.shutdown()


def test_tenants_route_reports_windows_and_fairness(store):
    service = make_service(store)
    service.submit(wordcount_job("wc", r"alpha"), tenant="tenant_a")
    run_to_completion(service)
    _, _, body = handle_path(service, "/tenants")
    payload = json.loads(body)
    assert set(payload) == {"tenants", "fairness", "slo"}
    tenant = payload["tenants"]["tenant_a"]
    assert tenant["telemetry"]["edges"]["completed"]["total"] == 1
    assert tenant["queue_depth"] == 0
    assert payload["slo"][0]["tenant"] == "tenant_a"
    service.shutdown()


# ---------------------------------------------------------------- live HTTP


def test_live_server_serves_all_routes(store):
    service = make_service(store)
    service.submit(wordcount_job("wc", r"alpha"), tenant="tenant_a")
    run_to_completion(service)
    server = start_http_server(service, 0)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        with urllib.request.urlopen(f"{base}/status", timeout=5) as response:
            assert response.status == 200
            assert json.loads(response.read())["schema_version"] == \
                SNAPSHOT_SCHEMA_VERSION
        with urllib.request.urlopen(f"{base}/metrics", timeout=5) as response:
            assert response.headers["Content-Type"] == \
                EXPOSITION_CONTENT_TYPE
            assert parse_exposition(response.read().decode("utf-8"))
        with urllib.request.urlopen(f"{base}/healthz", timeout=5) as response:
            assert response.status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/bogus", timeout=5)
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["routes"] == list(ROUTES)
    finally:
        server.shutdown()
        service.shutdown()
