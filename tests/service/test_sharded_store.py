"""Scheduler service over a sharded store: same results, live failover."""

import pytest

from repro.localrt.jobs import wordcount_job
from repro.localrt.sharded import ShardedBlockStore
from repro.localrt.storage import BlockStore

from .test_core import make_service, run_to_completion

LINES = [f"alpha beta gamma delta line {i:04d} spam" for i in range(160)]


@pytest.fixture
def sharded(tmp_path):
    return ShardedBlockStore.create(tmp_path / "shards", LINES, 512,
                                    num_shards=4, replication=2)


def jobs():
    return [wordcount_job("wc-alpha", r"alpha"),
            wordcount_job("wc-beta", r"beta")]


def test_service_results_match_single_store(tmp_path, sharded):
    single = BlockStore.create(tmp_path / "corpus", LINES,
                               block_size_bytes=512)
    outputs = {}
    for name, store in (("sharded", sharded), ("single", single)):
        service = make_service(store)
        ids = [service.submit(job) for job in jobs()]
        run_to_completion(service)
        outputs[name] = [sorted(service.status(job_id).result.output)
                         for job_id in ids]
        service.shutdown()
    assert outputs["sharded"] == outputs["single"]


def test_service_survives_mid_scan_shard_loss(tmp_path, sharded):
    single = BlockStore.create(tmp_path / "corpus", LINES,
                               block_size_bytes=512)
    reference = make_service(single)
    ref_ids = [reference.submit(job) for job in jobs()]
    run_to_completion(reference)

    service = make_service(sharded)
    ids = [service.submit(job) for job in jobs()]
    service.step()  # first iteration done; scan is mid-flight
    sharded.fail_shard(0)
    run_to_completion(service)

    for job_id, ref_id in zip(ids, ref_ids):
        assert (sorted(service.status(job_id).result.output)
                == sorted(reference.status(ref_id).result.output))
    assert sharded.stats_snapshot().replica_fallback_reads > 0
    service.shutdown()
    reference.shutdown()
