"""Core telemetry wiring: lifecycle edges, live-vs-offline agreement,
snapshot schema pinning, SLO and tenants reports."""

import json
import pathlib

import pytest

from repro.common.clock import FakeClock
from repro.common.config import ExecutionConfig, TraceConfig
from repro.common.errors import AdmissionRejected
from repro.localrt.jobs import wordcount_job
from repro.obs.export import export_chrome, load_events
from repro.obs.live.slo import SLOConfig
from repro.obs.live.window import exact_percentile
from repro.service.config import ServiceConfig
from repro.service.core import SNAPSHOT_SCHEMA_VERSION, SchedulerService

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden"


def make_service(store, **kwargs):
    kwargs.setdefault("execution", ExecutionConfig(blocks_per_segment=4))
    kwargs.setdefault("idle_poll_s", 0.005)
    kwargs.setdefault("window_horizon_s", 60.0)
    clock = kwargs.pop("clock", None)
    return SchedulerService(store, ServiceConfig(**kwargs), clock=clock)


def run_stepped(service, clock, dt=1.0):
    while service.step():
        clock.advance(dt)


# ------------------------------------------------------------ edge wiring


def test_lifecycle_edges_feed_the_windows(store):
    clock = FakeClock()
    service = make_service(store, clock=clock)
    service.submit(wordcount_job("wc_a", r"alpha"), tenant="tenant_a")
    service.submit(wordcount_job("wc_b", r"beta"), tenant="tenant_b")
    run_stepped(service, clock)
    telemetry = service.telemetry
    assert telemetry.edges["submitted"].total() == 2
    assert telemetry.edges["admitted"].total() == 2
    assert telemetry.edges["completed"].total() == 2
    assert telemetry.edges["rejected"].total() == 0
    per_tenant = telemetry.tenants()
    assert set(per_tenant) == {"tenant_a", "tenant_b"}
    assert per_tenant["tenant_a"].edges["completed"].total() == 1
    # Window response times agree with the accounting records.
    accounts = service.accounts()
    live = telemetry.response_s.snapshot()
    assert live.count == sum(acc.completed for acc in accounts.values())
    service.shutdown()


def test_reject_edge_recorded_under_strict_cap(store):
    clock = FakeClock()
    service = make_service(store, clock=clock, max_pending=1,
                           overload_policy="reject")
    service.submit(wordcount_job("wc", r"alpha"), tenant="tenant_a")
    with pytest.raises(AdmissionRejected):
        service.submit(wordcount_job("wc2", r"beta"), tenant="tenant_a")
    assert service.telemetry.edges["rejected"].total() == 1
    tenant = service.telemetry.tenant("tenant_a")
    assert tenant.edges["rejected"].total() == 1
    run_stepped(service, clock)
    service.shutdown()


def test_cancel_edge_recorded(store):
    clock = FakeClock()
    service = make_service(store, clock=clock)
    job_id = service.submit(wordcount_job("wc", r"alpha"), tenant="tenant_a")
    assert service.cancel(job_id)
    assert service.telemetry.edges["cancelled"].total() == 1
    assert service.telemetry.edges["completed"].total() == 0
    service.shutdown()


# --------------------------------------- live windows vs offline analytics


def test_windowed_percentiles_agree_with_offline_trace(store, tmp_path):
    clock = FakeClock()
    service = make_service(
        store, clock=clock,
        execution=ExecutionConfig(blocks_per_segment=4,
                                  trace=TraceConfig(enabled=True)))
    jobs = [("tenant_a", "wc_a", r"alpha"), ("tenant_b", "wc_b", r"beta"),
            ("tenant_a", "wc_c", r"gamma"), ("tenant_b", "wc_d", r"delta")]
    for index, (tenant, name, pattern) in enumerate(jobs):
        service.submit_at_iteration(wordcount_job(name, pattern), index,
                                    tenant=tenant)
    run_stepped(service, clock)
    live = service.telemetry.response_s.snapshot()

    trace_path = tmp_path / "service.trace.json"
    export_chrome(trace_path, [service.tracer])
    offline = sorted(event["args"]["response_s"]
                     for event in load_events(trace_path)
                     if event["name"] == "service.complete")
    service.shutdown()

    assert live.count == len(offline) == len(jobs)
    for q in (50.0, 95.0, 99.0):
        assert live.quantile(q) == exact_percentile(offline, q)


# ----------------------------------------------------------- snapshot shape


def _key_paths(node, prefix=""):
    """Every dict key path in a JSON-ish tree (lists collapse to [])."""
    paths = set()
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            paths.add(path)
            paths.update(_key_paths(value, path))
    elif isinstance(node, list):
        for item in node:
            paths.update(_key_paths(item, prefix + "[]"))
    return paths


def build_schema_snapshot(store):
    """The deterministic snapshot whose key paths the golden file pins."""
    clock = FakeClock()
    service = make_service(store, clock=clock)
    service.submit(wordcount_job("wc_a", r"alpha"), tenant="tenant_a")
    service.submit(wordcount_job("wc_b", r"beta"), tenant="tenant_b")
    run_stepped(service, clock)
    snapshot = service.snapshot()
    service.shutdown()
    return snapshot


def test_snapshot_schema_version_and_golden_shape(store):
    snapshot = build_schema_snapshot(store)
    assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
    paths = sorted(_key_paths(snapshot))
    golden = json.loads((GOLDEN / "snapshot.schema.json").read_text())
    assert paths == golden, (
        "snapshot shape drifted from tests/service/golden/"
        "snapshot.schema.json — bump SNAPSHOT_SCHEMA_VERSION if the "
        "change is intentional and regenerate with:\n"
        "  PYTHONPATH=src python tests/service/test_telemetry.py")


# ------------------------------------------------------------- SLO reports


def test_slo_report_burns_on_missed_objective(store):
    clock = FakeClock()
    # Jobs take >= 1 simulated second end to end; a 0.5 s objective with
    # a 50% target must register misses for every tenant.
    service = make_service(store, clock=clock,
                           slo=SLOConfig(objective_s=0.5, target=0.5))
    service.submit(wordcount_job("wc", r"alpha"), tenant="tenant_a")
    run_stepped(service, clock)
    statuses = service.slo_report()
    assert [status.tenant for status in statuses] == ["tenant_a"]
    status = statuses[0]
    assert status.completed == 1 and status.within_objective == 0
    assert status.budget_burn == pytest.approx(2.0)
    assert not status.healthy
    service.shutdown()


def test_tenants_report_merges_accounts_windows_and_fairness(store):
    clock = FakeClock()
    service = make_service(store, clock=clock)
    service.submit(wordcount_job("wc_a", r"alpha"), tenant="tenant_a")
    service.submit(wordcount_job("wc_b", r"beta"), tenant="tenant_b")
    run_stepped(service, clock)
    report = service.tenants_report()
    assert set(report) == {"tenants", "fairness", "slo"}
    for tenant in ("tenant_a", "tenant_b"):
        entry = report["tenants"][tenant]
        assert entry["account"]["completed"] == 1
        assert entry["queue_depth"] == 0
        assert entry["telemetry"]["slo"]["tenant"] == tenant
    assert 0.0 < report["fairness"]["response_fairness"] <= 1.0
    service.shutdown()


# ------------------------------------------------------ readiness (core API)


def test_readiness_overload_flip_and_recovery_in_step_mode(store):
    clock = FakeClock()
    service = make_service(store, clock=clock, max_pending=1,
                           overload_policy="reject")
    assert service.readiness()["ready"] is True
    service.submit(wordcount_job("wc", r"alpha"), tenant="tenant_a")
    verdict = service.readiness()
    assert verdict["overloaded"] is True and verdict["ready"] is False
    run_stepped(service, clock)
    verdict = service.readiness()
    assert verdict["overloaded"] is False and verdict["ready"] is True
    service.shutdown()


if __name__ == "__main__":  # golden regeneration entry point
    import tempfile

    from repro.localrt.storage import BlockStore

    with tempfile.TemporaryDirectory() as tmp:
        fresh = BlockStore.create(
            pathlib.Path(tmp) / "corpus",
            [f"alpha beta gamma delta line {i:04d} spam" for i in range(160)],
            block_size_bytes=512)
        paths = sorted(_key_paths(build_schema_snapshot(fresh)))
    (GOLDEN / "snapshot.schema.json").write_text(
        json.dumps(paths, indent=2) + "\n")
    print(f"regenerated {GOLDEN / 'snapshot.schema.json'}")
