"""SchedulerService core: lifecycle, admission, cancel, overload, audit.

Deterministic tests drive the scan with ``step()`` (no core thread);
threaded tests use the real core loop with generous timeouts and assert
only order-independent facts.
"""

import pytest

from repro.common.config import ExecutionConfig, TraceConfig
from repro.common.errors import AdmissionRejected, ServiceError
from repro.localrt.jobs import wordcount_job
from repro.service.config import ServiceConfig
from repro.service.core import SchedulerService, batch_equivalent
from repro.service.records import JobStatus


def make_service(store, **kwargs):
    kwargs.setdefault("execution", ExecutionConfig(blocks_per_segment=4))
    kwargs.setdefault("idle_poll_s", 0.005)
    return SchedulerService(store, ServiceConfig(**kwargs))


def run_to_completion(service):
    while service.step():
        pass


# ------------------------------------------------------- deterministic mode

def test_submit_step_complete(store):
    service = make_service(store)
    job_id = service.submit(wordcount_job("wc", r"alpha"), tenant="t")
    assert service.status(job_id).status is JobStatus.PENDING
    run_to_completion(service)
    ticket = service.status(job_id)
    assert ticket.status is JobStatus.DONE
    assert ticket.start_block == 0
    assert ticket.covered_blocks == store.num_blocks
    assert ticket.result is not None and ticket.result.output
    assert ticket.wait_s is not None and ticket.response_s is not None
    service.shutdown()


def test_mid_scan_admission_joins_at_pointer(store):
    service = make_service(store)
    service.submit(wordcount_job("first", r"alpha"))
    service.step()
    service.step()  # pointer now at 8
    late = service.submit(wordcount_job("late", r"beta"))
    run_to_completion(service)
    ticket = service.status(late)
    assert ticket.status is JobStatus.DONE
    # The paper's alignment: the late job started mid-file, at the
    # segment boundary the pointer had reached.
    assert ticket.start_block == 8
    assert ticket.covered_blocks == store.num_blocks
    service.shutdown()


def test_results_byte_identical_with_batch(store, tmp_path):
    jobs = [wordcount_job("wc_a", r"alpha"), wordcount_job("wc_b", r"beta"),
            wordcount_job("wc_c", r"gamma")]
    service = make_service(store)
    for i, job in enumerate(jobs):
        service.submit_at_iteration(job, i, tenant=f"t{i % 2}")
    run_to_completion(service)
    live = dict(service.results())
    service.shutdown()
    from repro.localrt.storage import BlockStore
    fresh = BlockStore(tmp_path / "corpus")
    batch = batch_equivalent(fresh, [
        wordcount_job("wc_a", r"alpha"), wordcount_job("wc_b", r"beta"),
        wordcount_job("wc_c", r"gamma")])
    for job in jobs:
        assert sorted(live[job.job_id].output) == \
            sorted(batch[job.job_id].output)


def test_cancel_pending_job(store):
    service = make_service(store, max_jobs_per_iteration=1)
    keep = service.submit(wordcount_job("keep", r"alpha"))
    service.step()  # "keep" admitted; cap holds the next one out
    held = service.submit(wordcount_job("held", r"beta"), tenant="t2")
    assert service.status(held).status is JobStatus.PENDING
    assert service.cancel(held) is True
    assert service.status(held).status is JobStatus.CANCELLED
    assert service.queue_depths() == {}
    run_to_completion(service)
    assert service.status(keep).status is JobStatus.DONE
    accounts = service.accounts()
    assert accounts["t2"].cancelled == 1 and accounts["t2"].in_flight == 0
    service.shutdown()


def test_cancel_scanning_job_detaches(store):
    service = make_service(store)
    victim = service.submit(wordcount_job("victim", r"alpha"))
    other = service.submit(wordcount_job("other", r"beta"))
    service.step()  # both scanning
    assert service.cancel(victim) is True
    ticket = service.status(victim)
    assert ticket.status is JobStatus.CANCELLED
    assert ticket.result is None and ticket.error
    run_to_completion(service)
    assert service.status(other).status is JobStatus.DONE
    service.shutdown()


def test_cancel_after_scan_done_is_too_late(store):
    service = make_service(store)
    job_id = service.submit(wordcount_job("wc", r"alpha"))
    run_to_completion(service)
    assert service.cancel(job_id) is False
    assert service.cancel("ghost") is False
    assert service.status(job_id).status is JobStatus.DONE
    service.shutdown()


def test_duplicate_and_unknown_ids(store):
    service = make_service(store)
    service.submit(wordcount_job("wc", r"alpha"))
    with pytest.raises(ServiceError, match="duplicate"):
        service.submit(wordcount_job("wc", r"beta"))
    with pytest.raises(ServiceError, match="unknown"):
        service.status("ghost")
    service.shutdown()


def test_overload_reject_policy(store):
    service = make_service(store, max_pending=2)
    service.submit(wordcount_job("a", r"a"), tenant="t")
    service.submit(wordcount_job("b", r"b"), tenant="t")
    with pytest.raises(AdmissionRejected) as excinfo:
        service.submit(wordcount_job("c", r"c"), tenant="t")
    assert excinfo.value.tenant == "t"
    assert excinfo.value.queue_depth == 2
    accounts = service.accounts()
    assert accounts["t"].submitted == 3 and accounts["t"].rejected == 1
    assert service.metrics.counter("service.reject").value == 1
    # Rejected submissions leave no entry behind; the id is reusable.
    service.step()  # drain the pending queue into the scan
    service.submit(wordcount_job("c", r"c"), tenant="t")
    run_to_completion(service)
    assert service.status("c").status is JobStatus.DONE
    service.shutdown()


def test_overload_block_policy_times_out(store):
    service = make_service(store, max_pending=1, overload_policy="block",
                           block_timeout_s=0.05)
    service.submit(wordcount_job("a", r"a"))
    with pytest.raises(AdmissionRejected):
        service.submit(wordcount_job("b", r"b"))
    service.shutdown()


def test_scheduled_arrival_over_bound_is_recorded_rejected(store):
    service = make_service(store, max_pending=1)
    service.submit_at_iteration(wordcount_job("a", r"a"), 0, tenant="t")
    service.submit_at_iteration(wordcount_job("b", r"b"), 0, tenant="t")
    run_to_completion(service)
    assert service.status("a").status is JobStatus.DONE
    accounts = service.accounts()
    assert accounts["t"].rejected == 1
    # The rejected arrival never became an entry; only "a" exists.
    with pytest.raises(ServiceError, match="unknown"):
        service.status("b")
    service.shutdown()


def test_shutdown_cancels_everything_no_strands(store):
    service = make_service(store, max_jobs_per_iteration=1)
    a = service.submit(wordcount_job("a", r"a"))
    b = service.submit(wordcount_job("b", r"b"))
    service.step()  # a scanning, b held pending by the cap
    service.shutdown()
    assert service.status(a).status is JobStatus.CANCELLED
    assert service.status(b).status is JobStatus.CANCELLED
    assert service.queue_depths() == {}
    with pytest.raises(ServiceError, match="shutting down"):
        service.submit(wordcount_job("c", r"c"))
    # Idempotent.
    service.shutdown()


def test_metrics_and_events_emitted(store):
    config = ServiceConfig(
        execution=ExecutionConfig(blocks_per_segment=4,
                                  trace=TraceConfig(enabled=True)))
    service = SchedulerService(store, config)
    service.submit(wordcount_job("wc", r"alpha"), tenant="t")
    run_to_completion(service)
    service.shutdown()
    assert service.metrics.counter("service.submit").value == 1
    assert service.metrics.counter("service.admit").value == 1
    assert service.metrics.counter("service.complete").value == 1
    assert service.metrics.gauge("service.queue_depth.t").value == 0
    names = {event.name for event in service.tracer.events()}
    assert {"service.submit", "service.admit", "service.complete",
            "s3.align", "s3.iteration", "io.wave"} <= names
    align = [e for e in service.tracer.events() if e.name == "s3.align"]
    assert align[0].args["start_block"] == 0


def test_snapshot_shape(store):
    service = make_service(store)
    service.submit(wordcount_job("wc", r"alpha"), tenant="t")
    run_to_completion(service)
    snap = service.snapshot()
    assert snap["jobs"]["wc"]["status"] == "done"
    assert snap["iterations"] > 0 and snap["blocks_read"] > 0
    assert snap["tenants"][0]["tenant"] == "t"
    assert 0.0 < snap["fairness"]["response_fairness"] <= 1.0
    service.shutdown()


# ------------------------------------------------------------ threaded mode

def test_threaded_submit_drain(store):
    with make_service(store) as service:
        ids = [service.submit(wordcount_job(f"wc{i}", r"alpha"),
                              tenant=f"t{i % 2}") for i in range(4)]
        tickets = service.drain(timeout=60.0)
        assert {t.job_id for t in tickets} == set(ids)
        assert all(t.status is JobStatus.DONE for t in tickets)
        report = service.fairness()
        assert 0.0 < report.response_fairness <= 1.0


def test_threaded_wait_for_and_draining_refusal(store):
    with make_service(store) as service:
        job_id = service.submit(wordcount_job("wc", r"alpha"))
        ticket = service.wait_for(job_id, timeout=60.0)
        assert ticket.status is JobStatus.DONE
        with pytest.raises(ServiceError, match="unknown"):
            service.wait_for("ghost", timeout=1.0)


def test_step_refused_while_threaded_core_runs(store):
    with make_service(store) as service:
        with pytest.raises(ServiceError, match="core thread"):
            service.step()


def test_restart_after_shutdown_refused(store):
    service = make_service(store)
    service.start()
    service.shutdown()
    with pytest.raises(ServiceError):
        service.start()
