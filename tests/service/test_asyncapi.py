"""Asyncio front-end over the threaded core."""

import asyncio

import pytest

from repro.common.errors import ServiceError
from repro.localrt.jobs import wordcount_job
from repro.service.asyncapi import AsyncSchedulerService
from repro.service.config import ServiceConfig
from repro.service.core import SchedulerService
from repro.service.records import JobStatus


def test_async_submit_wait_drain(store):
    async def scenario():
        async with AsyncSchedulerService(store, ServiceConfig()) as svc:
            first = await svc.submit(wordcount_job("wc_a", r"alpha"),
                                     tenant="t1")
            second = await svc.submit(wordcount_job("wc_b", r"beta"),
                                      tenant="t2")
            ticket = await svc.wait_for(first, timeout=60.0)
            assert ticket.status is JobStatus.DONE
            tickets = await svc.drain(timeout=60.0)
            assert {t.job_id for t in tickets} == {first, second}
            report = await svc.fairness()
            assert 0.0 < report.response_fairness <= 1.0
            snap = await svc.snapshot()
            assert snap["jobs"]["wc_b"]["status"] == "done"

    asyncio.run(scenario())


def test_async_cancel_and_status(store):
    async def scenario():
        async with AsyncSchedulerService(store, ServiceConfig(
                max_jobs_per_iteration=1)) as svc:
            await svc.submit(wordcount_job("keep", r"alpha"))
            held = await svc.submit(wordcount_job("held", r"beta"))
            # The held job is either still pending (cancellable) or was
            # admitted; both outcomes are legal — assert consistency.
            cancelled = await svc.cancel(held)
            ticket = await svc.status(held)
            if cancelled:
                assert ticket.status is JobStatus.CANCELLED
            await svc.drain(timeout=60.0)
            final = await svc.status("keep")
            assert final.status is JobStatus.DONE

    asyncio.run(scenario())


def test_wrap_does_not_own_core(store):
    async def scenario(core):
        wrapper = AsyncSchedulerService.wrap(core)
        assert wrapper.core is core
        async with wrapper as svc:
            job_id = await svc.submit(wordcount_job("wc", r"alpha"))
            await svc.wait_for(job_id, timeout=60.0)
        # __aexit__ must NOT have shut the wrapped core down.
        assert core.running

    core = SchedulerService(store, ServiceConfig()).start()
    try:
        asyncio.run(scenario(core))
        core.submit(wordcount_job("after", r"beta"))
        core.drain(timeout=60.0)
    finally:
        core.shutdown()
    with pytest.raises(ServiceError):
        core.submit(wordcount_job("late", r"a"))


def test_async_unknown_job_raises(store):
    async def scenario():
        async with AsyncSchedulerService(store, ServiceConfig()) as svc:
            with pytest.raises(ServiceError, match="unknown"):
                await svc.status("ghost")

    asyncio.run(scenario())
