"""Job tickets, tenant accounting and Jain fairness."""

import pytest

from repro.service.records import (
    FairnessReport,
    JobStatus,
    JobTicket,
    TenantAccount,
    fairness_report,
    jain_index,
)


def test_terminal_statuses():
    assert not JobStatus.PENDING.terminal
    assert not JobStatus.SCANNING.terminal
    for status in (JobStatus.DONE, JobStatus.CANCELLED,
                   JobStatus.REJECTED, JobStatus.FAILED):
        assert status.terminal


def test_ticket_latency_properties():
    ticket = JobTicket(job_id="j", tenant="t", status=JobStatus.PENDING,
                       submitted_at=1.0)
    assert ticket.wait_s is None and ticket.response_s is None
    done = JobTicket(job_id="j", tenant="t", status=JobStatus.DONE,
                     submitted_at=1.0, admitted_at=1.5, finished_at=4.0)
    assert done.wait_s == pytest.approx(0.5)
    assert done.response_s == pytest.approx(3.0)


def test_jain_index_bounds():
    assert jain_index([]) == 1.0
    assert jain_index([0.0, 0.0]) == 1.0
    assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)
    # One tenant hogging everything: the 1/n floor.
    assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        jain_index([1.0, -1.0])


def test_tenant_account_means():
    account = TenantAccount(tenant="t", completed=2,
                            total_wait_s=1.0, total_response_s=6.0)
    assert account.mean_wait_s == pytest.approx(0.5)
    assert account.mean_response_s == pytest.approx(3.0)
    empty = TenantAccount(tenant="e")
    assert empty.mean_wait_s == 0.0 and empty.mean_response_s == 0.0


def test_fairness_report_ordering_and_exclusions():
    a = TenantAccount(tenant="a", submitted=2, completed=2,
                      total_response_s=4.0)
    b = TenantAccount(tenant="b", submitted=2, completed=2,
                      total_response_s=4.0)
    # Submitted but completed nothing: excluded from the response index,
    # included (as zero) in the throughput index.
    c = TenantAccount(tenant="c", submitted=2)
    report = fairness_report([b, c, a])
    assert isinstance(report, FairnessReport)
    assert [acc.tenant for acc in report.accounts] == ["a", "b", "c"]
    assert report.response_fairness == pytest.approx(1.0)
    assert report.throughput_fairness == pytest.approx(jain_index([2, 2, 0]))
    table = report.format_table()
    assert "Jain fairness" in table and "a" in table
    as_dict = report.as_dict()
    assert len(as_dict["tenants"]) == 3
