"""Streaming-arrival stress test (the service's liveness contract).

Poisson submissions from multiple tenants are driven open-loop against a
live service running a strict admission cap and a bounded pending queue.
Asserted facts are order-independent (thread scheduling varies):

* liveness — every accepted job reaches a terminal state, nothing
  strands in PENDING/SCANNING after drain;
* accounting — per-tenant counters are internally consistent and the
  fairness report is computable;
* correctness — completed jobs' outputs are byte-identical to a
  batch-style run of the same job set.
"""

from repro.common.config import ExecutionConfig
from repro.localrt.jobs import wordcount_job
from repro.localrt.storage import BlockStore
from repro.service.config import ServiceConfig
from repro.service.core import SchedulerService, batch_equivalent
from repro.service.driver import OpenLoopDriver
from repro.service.records import JobStatus
from repro.workloads.arrivals import poisson_streams
from repro.workloads.wordcount import DEFAULT_PATTERNS


def _pattern(event):
    return DEFAULT_PATTERNS[event.index % len(DEFAULT_PATTERNS)]


def _factory(event):
    return wordcount_job(f"{event.tenant}_j{event.index}", _pattern(event))


def test_streaming_poisson_under_strict_cap(store, tmp_path):
    events = poisson_streams({"t_a": 0.5, "t_b": 0.8}, 6, seed=7)
    config = ServiceConfig(
        execution=ExecutionConfig(blocks_per_segment=4),
        max_pending=3, overload_policy="reject",
        max_jobs_per_iteration=2, idle_poll_s=0.005)
    with SchedulerService(store, config) as service:
        driver = OpenLoopDriver(service, events, _factory, time_scale=0.02)
        report = driver.run()
        tickets = service.drain(timeout=120.0)
        fairness = service.fairness()
        accounts = service.accounts()
        live = dict(service.results())

    # Open-loop accounting: every arrival was either accepted or rejected.
    assert report.total == len(events) == 12
    assert len(report.submitted) >= 1

    # Liveness: everything accepted is terminal, nothing stranded.
    assert {t.job_id for t in tickets} == set(report.submitted)
    assert all(t.status.terminal for t in tickets)
    done = [t for t in tickets if t.status is JobStatus.DONE]
    assert done, "at least one job must complete under the cap"
    for ticket in done:
        assert ticket.covered_blocks == store.num_blocks
        assert ticket.result is not None

    # Per-tenant fairness is computable and the books balance.
    assert 0.0 < fairness.response_fairness <= 1.0
    assert 0.0 < fairness.throughput_fairness <= 1.0
    for tenant in ("t_a", "t_b"):
        acc = accounts[tenant]
        tenant_tickets = [t for t in tickets if t.tenant == tenant]
        assert acc.submitted == 6
        assert acc.in_flight == 0
        assert acc.completed == sum(
            1 for t in tenant_tickets if t.status is JobStatus.DONE)
        assert acc.rejected == sum(
            1 for jid, ten in report.rejected if ten == tenant)
        assert (acc.completed + acc.cancelled + acc.rejected
                + acc.failed) == acc.submitted

    # Byte-identical outputs vs a batch-style run of the completed set.
    fresh = BlockStore(tmp_path / "corpus")
    batch_jobs = [
        _factory(e) for e in events
        if f"{e.tenant}_j{e.index}" in {t.job_id for t in done}]
    batch = batch_equivalent(fresh, batch_jobs)
    for ticket in done:
        assert sorted(live[ticket.job_id].output) == \
            sorted(batch[ticket.job_id].output)


def test_backpressure_blocking_submitters_drain(store):
    """Block-policy overload: submitters wait for capacity and all
    arrivals eventually land (the scan drains faster than the timeout)."""
    events = poisson_streams({"t": 0.2}, 8, seed=3)
    config = ServiceConfig(
        execution=ExecutionConfig(blocks_per_segment=4),
        max_pending=1, overload_policy="block", block_timeout_s=60.0,
        idle_poll_s=0.005)
    with SchedulerService(store, config) as service:
        driver = OpenLoopDriver(service, events, _factory, time_scale=0.01)
        report = driver.run()
        tickets = service.drain(timeout=120.0)
    assert not report.rejected
    assert len(tickets) == len(events)
    assert all(t.status is JobStatus.DONE for t in tickets)
