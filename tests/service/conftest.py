"""Shared fixtures for the scheduler-service tests."""

import pytest

from repro.localrt.storage import BlockStore


@pytest.fixture
def store(tmp_path):
    """A small deterministic corpus: ~13 blocks of patterned text."""
    lines = [f"alpha beta gamma delta line {i:04d} spam" for i in range(160)]
    return BlockStore.create(tmp_path / "corpus", lines,
                             block_size_bytes=512)
