"""Open-loop driver pacing and arrival-stream construction."""

import pytest

from repro.common.errors import WorkloadError
from repro.localrt.jobs import wordcount_job
from repro.workloads.arrivals import (
    ArrivalEvent,
    merge_streams,
    poisson_streams,
    trace_stream,
)


def test_merge_streams_orders_and_indexes():
    events = merge_streams({"b": [0.0, 2.0], "a": [1.0, 1.0]})
    assert [(e.time, e.tenant, e.index) for e in events] == [
        (0.0, "b", 0), (1.0, "a", 0), (1.0, "a", 1), (2.0, "b", 1)]


def test_merge_streams_tie_break_is_name_order():
    events = merge_streams({"z": [5.0], "a": [5.0]})
    assert [e.tenant for e in events] == ["a", "z"]


def test_poisson_streams_deterministic_and_decorrelated():
    one = poisson_streams({"a": 1.0, "b": 1.0}, 5, seed=42)
    two = poisson_streams({"a": 1.0, "b": 1.0}, 5, seed=42)
    assert one == two
    times_a = [e.time for e in one if e.tenant == "a"]
    times_b = [e.time for e in one if e.tenant == "b"]
    assert times_a != times_b  # independent draws per tenant
    # Adding a tenant must not perturb existing tenants' schedules.
    three = poisson_streams({"a": 1.0, "b": 1.0, "c": 9.0}, 5, seed=42)
    assert [e.time for e in three if e.tenant == "a"] == times_a


def test_trace_stream_sorts_per_tenant():
    events = trace_stream([(3.0, "a"), (1.0, "b"), (2.0, "a")])
    assert [(e.time, e.tenant, e.index) for e in events] == [
        (1.0, "b", 0), (2.0, "a", 0), (3.0, "a", 1)]


def test_stream_validation():
    with pytest.raises(WorkloadError):
        merge_streams({})
    with pytest.raises(WorkloadError):
        merge_streams({"a": [2.0, 1.0]})  # not monotone
    with pytest.raises(WorkloadError):
        ArrivalEvent(time=-1.0, tenant="a", index=0)
    with pytest.raises(WorkloadError):
        trace_stream([])


def test_driver_paces_with_injected_clock(store):
    """The driver sleeps exactly the scaled gaps (no real time needed)."""
    from repro.common.clock import FakeClock
    from repro.service.config import ServiceConfig
    from repro.service.core import SchedulerService
    from repro.service.driver import OpenLoopDriver

    clock = FakeClock()
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(round(seconds, 6))
        clock.advance(seconds)

    events = merge_streams({"t": [0.0, 2.0, 5.0]})
    service = SchedulerService(store, ServiceConfig())

    def factory(event):
        return wordcount_job(f"j{event.index}", r"alpha")

    driver = OpenLoopDriver(service, events, factory, time_scale=0.5,
                            clock=clock, sleep=fake_sleep)
    report = driver.run()
    assert report.submitted == ["j0", "j1", "j2"]
    assert sleeps == [1.0, 1.5]  # gaps 2s and 3s, scaled by 0.5
    assert report.elapsed_s == pytest.approx(2.5)
    # Jobs queued pre-start; drive them inline and shut down cleanly.
    while service.step():
        pass
    assert service.status("j2").status.value == "done"
    service.shutdown()


def test_driver_validation(store):
    from repro.service.config import ServiceConfig
    from repro.service.core import SchedulerService
    from repro.service.driver import OpenLoopDriver, replay_iterations

    service = SchedulerService(store, ServiceConfig())
    events = merge_streams({"t": [0.0]})

    def factory(event):
        return wordcount_job("j", r"a")

    with pytest.raises(WorkloadError):
        OpenLoopDriver(service, [], factory)
    with pytest.raises(WorkloadError):
        OpenLoopDriver(service, events, factory, time_scale=0.0)
    with pytest.raises(WorkloadError):
        replay_iterations(service, events, factory, iterations_per_second=0)
    service.shutdown()
