"""Exporters: golden Chrome trace, JSONL roundtrip, summaries, bad input."""

import io
import json
import pathlib

import pytest

from repro.common.errors import ExperimentError
from repro.obs import (
    Tracer,
    chrome_events,
    export_chrome,
    export_jsonl,
    format_summary,
    load_events,
    summarize,
)

GOLDEN = pathlib.Path(__file__).parent / "golden" / "sample.trace.json"


class StepClock:
    def __init__(self, start: float = 0.0, step: float = 0.25) -> None:
        self.t = start
        self.step = step

    def __call__(self) -> float:
        now = self.t
        self.t += self.step
        return now


def sample_tracers() -> list[Tracer]:
    """A small deterministic two-clock-domain scenario."""
    sim = Tracer(name="sim", clock=lambda: 0.0)
    sim.event_at(0.0, "job.submit", subject="j1", lane="events", file="f")
    sim.event_at(2.0, "s3.pointer", subject="f", lane="events", pointer=4)
    sim.span_at("s3.segment", 0.0, 4.0, subject="it_0", lane="s3", blocks=4)
    sim.span_at("s3.map_wave", 0.0, 3.0, subject="it_0", lane="s3", depth=1)
    wall = Tracer(name="shared-scan", clock=StepClock())
    with wall.span("map.wave", lane="main", blocks=2):
        with wall.span("map.task", subject="block_0", lane="main"):
            pass
    wall.event("io.wave", subject="iter_0", lane="main", blocks=2)
    return [sim, wall]


def test_chrome_export_matches_golden_file():
    """Byte-identical output for identical runs (pins ordering + format)."""
    handle = io.StringIO()
    count = export_chrome(handle, sample_tracers())
    assert count == 7
    assert handle.getvalue() == GOLDEN.read_text(encoding="utf-8")


def test_chrome_events_shape_and_order():
    events = chrome_events(sample_tracers())
    meta = [e for e in events if e["ph"] == "M"]
    data = [e for e in events if e["ph"] != "M"]
    # One process_name per tracer plus one thread_name per lane.
    names = {(e["name"], e["args"]["name"]) for e in meta}
    assert ("process_name", "sim") in names
    assert ("process_name", "shared-scan") in names
    assert ("thread_name", "s3") in names
    # Data records carry ph/ts and dur (spans) or s (instants), in
    # microseconds, sorted by (pid, tid, ts, depth, name, index).
    for event in data:
        assert event["ph"] in ("X", "i")
        assert "ts" in event and "cat" in event
        assert ("dur" in event) == (event["ph"] == "X")
        if event["ph"] == "i":
            assert event["s"] == "t"
    keys = [(e["pid"], e["tid"], e["ts"]) for e in data]
    assert keys == sorted(keys)
    segment = next(e for e in data if e["name"] == "s3.segment")
    assert segment["ts"] == 0.0 and segment["dur"] == 4_000_000.0
    assert segment["args"] == {"blocks": 4, "subject": "it_0"}


def test_chrome_roundtrip_via_load_events(tmp_path):
    path = tmp_path / "t.trace.json"
    export_chrome(path, sample_tracers())
    events = load_events(path)
    assert len(events) == 7
    by_name = {e["name"]: e for e in events}
    # Seconds restored, lane/tracer names resolved from metadata.
    assert by_name["s3.segment"]["dur"] == pytest.approx(4.0)
    assert by_name["s3.segment"]["lane"] == "s3"
    assert by_name["s3.segment"]["tracer"] == "sim"
    assert by_name["job.submit"]["subject"] == "j1"
    assert by_name["job.submit"]["args"] == {"file": "f"}


def test_jsonl_roundtrip(tmp_path):
    path = tmp_path / "t.jsonl"
    count = export_jsonl(path, sample_tracers())
    assert count == 7
    events = load_events(path)
    assert len(events) == 7
    # JSONL preserves record order and native seconds.
    assert events[0]["name"] == "job.submit"
    assert events[0]["tracer"] == "sim"
    wave = next(e for e in events if e["name"] == "map.wave")
    assert wave["ts"] == pytest.approx(0.0)
    assert wave["dur"] == pytest.approx(0.75)


def test_exported_chrome_is_valid_json(tmp_path):
    path = tmp_path / "t.trace.json"
    export_chrome(path, sample_tracers())
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["displayTimeUnit"] == "ms"
    assert isinstance(document["traceEvents"], list)


def test_summarize_and_format():
    events = [
        {"ph": "X", "name": "map.wave", "ts": 0.0, "dur": 2.0,
         "lane": "main", "tracer": "t", "subject": "", "args": {}},
        {"ph": "X", "name": "map.wave", "ts": 2.0, "dur": 1.0,
         "lane": "main", "tracer": "t", "subject": "", "args": {}},
        {"ph": "i", "name": "io.wave", "ts": 3.0, "dur": 0.0,
         "lane": "main", "tracer": "t", "subject": "", "args": {}},
    ]
    summary = summarize(events)
    assert summary["events"] == 3
    assert summary["spans"] == 2 and summary["instants"] == 1
    assert summary["lanes"] == 1
    assert summary["span_seconds"] == pytest.approx(3.0)
    assert summary["names"]["map.wave"]["count"] == 2
    assert summary["names"]["map.wave"]["max_dur"] == pytest.approx(2.0)
    text = format_summary(summary)
    assert "3 events" in text and "map.wave" in text


def test_summarize_empty():
    summary = summarize([])
    assert summary["events"] == 0 and summary["span_seconds"] == 0.0
    assert format_summary(summary).startswith("0 events")


def test_load_events_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.trace.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ExperimentError, match="unreadable trace file"):
        load_events(bad)


def test_load_events_empty_file(tmp_path):
    empty = tmp_path / "empty.trace.json"
    empty.write_text("", encoding="utf-8")
    assert load_events(empty) == []
