"""Prometheus exposition: encoder determinism, strict parser, golden pin."""

import math
import pathlib

import pytest

from repro.common.clock import FakeClock
from repro.common.errors import ExecutionError
from repro.obs.live.exposition import (
    MetricFamily,
    Sample,
    format_value,
    parse_exposition,
    registry_families,
    render_families,
    samples_by_name,
    sanitize_metric_name,
    telemetry_families,
    tenant_families,
)
from repro.obs.live.slo import SLOConfig
from repro.obs.live.telemetry import ServiceTelemetry
from repro.obs.metrics import MetricsRegistry

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / "golden"


def build_golden_exposition() -> str:
    """Deterministic registry + telemetry body pinned by the golden file."""
    clock = FakeClock()
    registry = MetricsRegistry()
    registry.counter("io.blocks_read").inc(7)
    registry.gauge("cache.depth").set(2.5)
    hist = registry.histogram("wave.blocks", buckets=(1.0, 4.0))
    for value in (0.5, 2.0, 9.0):
        hist.observe(value)
    telemetry = ServiceTelemetry(
        horizon_s=60.0, slo=SLOConfig(objective_s=1.0, target=0.9),
        clock=clock)
    for index in range(6):
        tenant = "tenant_a" if index % 2 == 0 else "tenant_b"
        telemetry.record_submit(tenant)
        clock.advance(0.25)
        telemetry.record_admit(tenant, 0.25)
        clock.advance(0.5)
        telemetry.record_complete(tenant, 0.75 + index * 0.1)
    telemetry.record_reject("tenant_b")
    return render_families(registry_families(registry)
                           + telemetry_families(telemetry))


# ---------------------------------------------------------------------------
# Name and value canonicalisation


def test_sanitize_metric_name():
    assert sanitize_metric_name("io.blocks_read") == "io_blocks_read"
    assert sanitize_metric_name("a-b c") == "a_b_c"
    assert sanitize_metric_name("9lives") == "_9lives"


def test_format_value_canonical():
    assert format_value(3) == "3"
    assert format_value(3.0) == "3"
    assert format_value(2.5) == "2.5"
    assert format_value(math.inf) == "+Inf"
    assert format_value(-math.inf) == "-Inf"
    assert format_value(math.nan) == "NaN"


def test_sample_render_escapes_labels():
    sample = Sample("m", (("path", 'a"b\\c\nd'),), 1.0)
    assert sample.render() == 'm{path="a\\"b\\\\c\\nd"} 1'
    with pytest.raises(ExecutionError, match="invalid sample name"):
        Sample("9bad", (), 1.0).render()
    with pytest.raises(ExecutionError, match="invalid label name"):
        Sample("m", (("bad-label", "x"),), 1.0).render()


def test_family_validates_kind_and_name():
    with pytest.raises(ExecutionError, match="kind must be one of"):
        MetricFamily("m", "timer", "h")
    with pytest.raises(ExecutionError, match="invalid family name"):
        MetricFamily("bad name", "gauge", "h")


def test_render_families_sorts_and_rejects_duplicates():
    a = MetricFamily("b_metric", "gauge", "h", (Sample("b_metric", (), 1),))
    b = MetricFamily("a_metric", "gauge", "h", (Sample("a_metric", (), 2),))
    body = render_families([a, b])
    assert body.index("a_metric") < body.index("b_metric")
    assert body.endswith("\n")
    with pytest.raises(ExecutionError, match="duplicate metric family"):
        render_families([a, a])


# ---------------------------------------------------------------------------
# Encoders


def test_registry_families_kinds_and_histogram_buckets():
    registry = MetricsRegistry()
    registry.counter("io.blocks_read").inc(7)
    registry.gauge("cache.depth").set(2.5)
    hist = registry.histogram("wave.blocks", buckets=(1.0, 4.0))
    for value in (0.5, 2.0, 9.0):
        hist.observe(value)
    body = render_families(registry_families(registry))
    assert "# TYPE repro_io_blocks_read_total counter" in body
    assert "repro_io_blocks_read_total 7" in body
    assert "# TYPE repro_cache_depth gauge" in body
    # Histogram buckets are cumulative and end with +Inf/_sum/_count.
    assert 'repro_wave_blocks_bucket{le="1"} 1' in body
    assert 'repro_wave_blocks_bucket{le="4"} 2' in body
    assert 'repro_wave_blocks_bucket{le="+Inf"} 3' in body
    assert "repro_wave_blocks_sum 11.5" in body
    assert "repro_wave_blocks_count 3" in body


def test_telemetry_families_global_and_tenant_scoping():
    clock = FakeClock()
    telemetry = ServiceTelemetry(horizon_s=60.0, clock=clock)
    telemetry.record_submit("tenant_a")
    clock.advance(0.5)
    telemetry.record_admit("tenant_a", 0.5)
    clock.advance(1.0)
    telemetry.record_complete("tenant_a", 1.5)
    body = render_families(telemetry_families(telemetry))
    # Global sample (no label) and per-tenant sample in the same family.
    assert "\nrepro_service_submitted_total 1\n" in body
    assert 'repro_service_submitted_total{tenant="tenant_a"} 1' in body
    assert 'repro_service_response_seconds{quantile="0.5"} 1.5' in body
    assert 'repro_slo_compliance{tenant="tenant_a"} 1' in body
    families = parse_exposition(body)
    kinds = {family.name: family.kind for family in families}
    assert kinds["repro_service_submitted_total"] == "counter"
    assert kinds["repro_service_window_submitted"] == "gauge"
    assert kinds["repro_service_response_seconds"] == "summary"


def test_tenant_families_single_tenant_view():
    clock = FakeClock()
    telemetry = ServiceTelemetry(horizon_s=60.0, clock=clock)
    telemetry.record_submit("tenant_a")
    telemetry.record_complete("tenant_a", 0.5)
    body = render_families(tenant_families(telemetry.tenant("tenant_a")))
    assert 'repro_service_submitted_total{tenant="tenant_a"} 1' in body
    assert parse_exposition(body)


# ---------------------------------------------------------------------------
# Parser strictness


def test_parse_round_trips_full_body():
    body = build_golden_exposition()
    families = parse_exposition(body)
    rendered = render_families(
        MetricFamily(name=f.name, kind=f.kind, help=f.help,
                     samples=f.samples)
        for f in families)
    assert rendered == body


def test_parse_rejects_sample_before_type_header():
    with pytest.raises(ExecutionError, match="before any # TYPE"):
        parse_exposition("orphan_metric 1\n")


def test_parse_rejects_bad_type_line():
    with pytest.raises(ExecutionError, match="bad TYPE line"):
        parse_exposition("# TYPE m timer\n")


def test_parse_rejects_non_roundtrip_line():
    text = ("# HELP m h\n# TYPE m gauge\n"
            "m 01\n")  # leading zero does not re-render identically
    with pytest.raises(ExecutionError, match="does not round-trip"):
        parse_exposition(text)


def test_parse_rejects_sample_under_wrong_family():
    text = ("# HELP m h\n# TYPE m gauge\n"
            "other 1\n")
    with pytest.raises(ExecutionError, match="under family"):
        parse_exposition(text)


def test_samples_by_name_flattens():
    families = parse_exposition(build_golden_exposition())
    samples = samples_by_name(families)
    assert len(samples["repro_service_submitted_total"]) == 3  # global + 2


# ---------------------------------------------------------------------------
# Golden pin — the exposition is byte-deterministic


def test_golden_exposition_bytes():
    body = build_golden_exposition()
    assert body == build_golden_exposition()  # re-render is identical
    golden = GOLDEN / "exposition.prom"
    assert body == golden.read_text(), (
        "exposition drifted from tests/obs/golden/exposition.prom; if the "
        "change is intentional, regenerate with:\n"
        "  PYTHONPATH=src python tests/obs/live/test_exposition.py")


if __name__ == "__main__":  # golden regeneration entry point
    (GOLDEN / "exposition.prom").write_text(build_golden_exposition())
    print(f"regenerated {GOLDEN / 'exposition.prom'}")
