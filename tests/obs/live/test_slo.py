"""Per-tenant SLO tracking: compliance, budget burn, windowed burn."""

import pytest

from repro.common.clock import FakeClock
from repro.common.errors import ConfigError
from repro.obs.live.slo import SLOConfig, SLOTracker, format_slo_table


def test_slo_config_validation_and_budget():
    config = SLOConfig(objective_s=2.0, target=0.95)
    assert config.budget == pytest.approx(0.05)
    with pytest.raises(ConfigError, match="objective_s"):
        SLOConfig(objective_s=0.0)
    with pytest.raises(ConfigError, match="target"):
        SLOConfig(target=1.0)
    with pytest.raises(ConfigError, match="target"):
        SLOConfig(target=0.0)


def test_tracker_unused_promise_is_unbroken():
    tracker = SLOTracker("tenant_a", SLOConfig(), clock=FakeClock())
    status = tracker.status()
    assert status.completed == 0
    assert status.compliance == 1.0
    assert status.budget_burn == 0.0
    assert status.healthy


def test_tracker_all_within_objective():
    tracker = SLOTracker("tenant_a", SLOConfig(objective_s=2.0, target=0.9),
                         clock=FakeClock())
    for response in (0.5, 1.0, 2.0):  # objective boundary is inclusive
        tracker.observe(response)
    status = tracker.status()
    assert status.completed == 3 and status.within_objective == 3
    assert status.compliance == 1.0
    assert status.budget_burn == 0.0
    assert status.window_burn == 0.0
    assert status.healthy


def test_tracker_burn_math_and_burned_state():
    # target 0.9 -> budget 0.1; 2 misses out of 4 -> burn 5.0.
    tracker = SLOTracker("tenant_a", SLOConfig(objective_s=1.0, target=0.9),
                         clock=FakeClock())
    for response in (0.5, 0.9, 3.0, 4.0):
        tracker.observe(response)
    status = tracker.status()
    assert status.compliance == pytest.approx(0.5)
    assert status.budget_burn == pytest.approx(5.0)
    assert not status.healthy
    assert status.as_dict()["healthy"] is False


def test_window_burn_recovers_while_alltime_burn_remembers():
    clock = FakeClock()
    tracker = SLOTracker("tenant_a", SLOConfig(objective_s=1.0, target=0.9),
                         horizon_s=10.0, clock=clock)
    tracker.observe(5.0)  # a miss
    assert tracker.status().window_burn == pytest.approx(10.0)
    clock.advance(10.0)  # the miss leaves the window
    tracker.observe(0.5)
    status = tracker.status()
    assert status.window_burn == 0.0
    assert status.window_completed == 1
    # All-time burn still remembers last night's incident.
    assert status.budget_burn == pytest.approx(5.0)


def test_format_slo_table():
    clock = FakeClock()
    good = SLOTracker("tenant_a", SLOConfig(objective_s=2.0, target=0.9),
                      clock=clock)
    good.observe(1.0)
    bad = SLOTracker("tenant_b", SLOConfig(objective_s=0.1, target=0.9),
                     clock=clock)
    bad.observe(9.0)
    table = format_slo_table([bad.status(), good.status()])
    lines = table.splitlines()
    assert "tenant" in lines[0] and "burn" in lines[0]
    # Rows come out tenant-sorted regardless of input order.
    assert lines[2].startswith("tenant_a") and lines[2].endswith("ok")
    assert lines[3].startswith("tenant_b") and lines[3].endswith("BURNED")
