"""Terminal dashboard: frame rendering and the --once scrape path."""

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.common.clock import FakeClock
from repro.obs.live.exposition import (
    MetricFamily,
    Sample,
    parse_exposition,
    render_families,
    telemetry_families,
)
from repro.obs.live.telemetry import ServiceTelemetry
from repro.obs.live.top import render_dashboard, run_top


def _gauge(name: str, value: float, labels=()) -> MetricFamily:
    return MetricFamily(name=name, kind="gauge", help=f"Gauge {name}.",
                        samples=(Sample(name, tuple(labels), value),))


def build_exposition() -> str:
    clock = FakeClock()
    telemetry = ServiceTelemetry(horizon_s=60.0, clock=clock)
    telemetry.record_submit("tenant_a")
    clock.advance(0.5)
    telemetry.record_admit("tenant_a", 0.5)
    clock.advance(1.0)
    telemetry.record_complete("tenant_a", 1.5)
    service_families = [
        _gauge("repro_service_ready", 1),
        _gauge("repro_service_overloaded", 0),
        _gauge("repro_service_slots_active", 1),
        _gauge("repro_service_queue_depth", 0,
               labels=(("tenant", "tenant_a"),)),
        MetricFamily(
            name="repro_service_iterations_total", kind="counter",
            help="Scan loop iterations.",
            samples=(Sample("repro_service_iterations_total", (), 3),)),
    ]
    return render_families(telemetry_families(telemetry) + service_families)


def test_render_dashboard_shows_service_and_tenant_rows():
    frame = render_dashboard(parse_exposition(build_exposition()),
                             url="http://example/metrics")
    assert "ready: yes" in frame
    assert "overloaded: no" in frame
    assert "iterations: 3" in frame
    assert "p99=1.5" in frame  # windowed response quantiles
    tenant_row = next(line for line in frame.splitlines()
                      if line.startswith("tenant_a"))
    assert "1.5" in tenant_row  # per-tenant response p99


def test_render_dashboard_without_tenants():
    body = render_families([_gauge("repro_service_ready", 0)])
    frame = render_dashboard(parse_exposition(body), url="u")
    assert "ready: NO" in frame
    assert "no tenants have submitted" in frame


def test_run_top_once_scrapes_a_live_endpoint(capsys):
    body = build_exposition().encode("utf-8")

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (stdlib handler API)
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.server_address[1]}/metrics"
        assert run_top(url, once=True) == 0
    finally:
        server.shutdown()
        thread.join()
    out = capsys.readouterr().out
    assert "tenant_a" in out and "ready: yes" in out


def test_run_top_reports_unreachable_target(capsys):
    assert run_top("http://127.0.0.1:9/metrics", once=True) == 1
    assert "cannot scrape" in capsys.readouterr().out
