"""Sliding windows: exact percentiles, rolling rates, horizon eviction."""

import math

import pytest

from repro.common.clock import FakeClock
from repro.common.errors import ExecutionError
from repro.obs.live.window import (
    RollingCounter,
    SlidingQuantiles,
    exact_percentile,
)


# ---------------------------------------------------------------------------
# exact_percentile — the shared live/offline definition


def test_exact_percentile_empty_is_zero():
    assert exact_percentile([], 50.0) == 0.0


def test_exact_percentile_single_value():
    assert exact_percentile([3.5], 0.0) == 3.5
    assert exact_percentile([3.5], 50.0) == 3.5
    assert exact_percentile([3.5], 100.0) == 3.5


def test_exact_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert exact_percentile(values, 0.0) == 1.0
    assert exact_percentile(values, 50.0) == pytest.approx(2.5)
    assert exact_percentile(values, 100.0) == 4.0
    assert exact_percentile(values, 25.0) == pytest.approx(1.75)


def test_exact_percentile_rejects_bad_rank():
    with pytest.raises(ExecutionError, match=r"\[0, 100\]"):
        exact_percentile([1.0], 101.0)
    with pytest.raises(ExecutionError, match=r"\[0, 100\]"):
        exact_percentile([1.0], -0.1)


# ---------------------------------------------------------------------------
# RollingCounter


def test_rolling_counter_counts_and_totals():
    clock = FakeClock()
    counter = RollingCounter("t", horizon_s=10.0, clock=clock)
    counter.inc()
    counter.inc(3)
    assert counter.count() == 4
    assert counter.total() == 4
    assert counter.rate() == pytest.approx(0.4)


def test_rolling_counter_evicts_past_horizon():
    clock = FakeClock()
    counter = RollingCounter("t", horizon_s=10.0, clock=clock)
    counter.inc(5)
    clock.advance(9.0)
    counter.inc(1)
    assert counter.count() == 6
    clock.advance(1.0)  # first sample now exactly at the horizon edge
    assert counter.count() == 1
    assert counter.total() == 6  # all-time total never evicted


def test_rolling_counter_infinite_horizon_rate():
    clock = FakeClock()
    counter = RollingCounter("t", horizon_s=math.inf, clock=clock)
    assert counter.rate() == 0.0  # no elapsed time yet
    counter.inc(4)
    clock.advance(2.0)
    assert counter.count() == 4
    assert counter.rate() == pytest.approx(2.0)


def test_rolling_counter_max_samples_keeps_total_exact():
    clock = FakeClock()
    counter = RollingCounter("t", horizon_s=1000.0, clock=clock,
                             max_samples=4)
    for _ in range(10):
        clock.advance(0.1)
        counter.inc()
    # The window under-reports (ring bound), the total never does.
    assert counter.count() == 4
    assert counter.total() == 10


def test_rolling_counter_rejects_bad_inputs():
    clock = FakeClock()
    counter = RollingCounter("t", horizon_s=5.0, clock=clock)
    with pytest.raises(ExecutionError, match="cannot decrease"):
        counter.inc(-1)
    with pytest.raises(ExecutionError, match="horizon_s must be positive"):
        RollingCounter("t", horizon_s=0.0, clock=clock)
    with pytest.raises(ExecutionError, match="horizon_s must be positive"):
        RollingCounter("t", horizon_s=math.nan, clock=clock)
    with pytest.raises(ExecutionError, match="max_samples"):
        RollingCounter("t", horizon_s=5.0, clock=clock, max_samples=0)


# ---------------------------------------------------------------------------
# SlidingQuantiles


def test_sliding_quantiles_snapshot_matches_exact_percentile():
    clock = FakeClock()
    window = SlidingQuantiles("t", horizon_s=100.0, clock=clock)
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    for value in values:
        clock.advance(0.1)
        window.observe(value)
    stats = window.snapshot()
    ordered = sorted(values)
    assert stats.count == 5
    assert stats.minimum == 1.0 and stats.maximum == 5.0
    assert stats.total == pytest.approx(15.0)
    assert stats.mean == pytest.approx(3.0)
    for q in (50.0, 95.0, 99.0):
        assert stats.quantile(q) == exact_percentile(ordered, q)


def test_sliding_quantiles_evicts_past_horizon():
    clock = FakeClock()
    window = SlidingQuantiles("t", horizon_s=10.0, clock=clock)
    window.observe(100.0)
    clock.advance(5.0)
    window.observe(1.0)
    assert len(window) == 2
    clock.advance(5.0)  # first observation hits the horizon edge
    assert window.values() == (1.0,)
    assert window.snapshot().quantile(50.0) == 1.0


def test_sliding_quantiles_ring_bound_drops_oldest():
    clock = FakeClock()
    window = SlidingQuantiles("t", horizon_s=math.inf, clock=clock,
                              max_samples=3)
    for value in (1.0, 2.0, 3.0, 4.0):
        window.observe(value)
    assert window.values() == (2.0, 3.0, 4.0)


def test_sliding_quantiles_empty_snapshot():
    clock = FakeClock()
    stats = SlidingQuantiles("t", clock=clock).snapshot()
    assert stats.count == 0
    assert stats.mean == 0.0
    assert stats.quantile(99.0) == 0.0
    assert stats.as_dict()["p99"] == 0.0


def test_sliding_quantiles_unconfigured_quantile_raises():
    clock = FakeClock()
    window = SlidingQuantiles("t", quantiles=(50.0,), clock=clock)
    window.observe(1.0)
    with pytest.raises(ExecutionError, match="does not report p75"):
        window.snapshot().quantile(75.0)


def test_sliding_quantiles_validates_configuration():
    clock = FakeClock()
    with pytest.raises(ExecutionError, match="at least one quantile"):
        SlidingQuantiles("t", quantiles=(), clock=clock)
    with pytest.raises(ExecutionError, match=r"\[0, 100\]"):
        SlidingQuantiles("t", quantiles=(50.0, 101.0), clock=clock)
    with pytest.raises(ExecutionError, match="strictly increase"):
        SlidingQuantiles("t", quantiles=(95.0, 50.0), clock=clock)


def test_window_stats_as_dict_quantile_keys():
    clock = FakeClock()
    window = SlidingQuantiles("t", horizon_s=30.0, clock=clock)
    window.observe(2.0)
    out = window.snapshot().as_dict()
    assert out["horizon_s"] == 30.0
    assert set(out) == {"horizon_s", "count", "total", "mean", "min",
                        "max", "p50", "p95", "p99"}
