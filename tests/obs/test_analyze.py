"""Trace analytics: span forest, critical path, timelines, attribution.

``build_fixture_tracers`` recreates the committed golden trace
(``golden/analyze.trace.json``) from scratch; one test pins the export
byte-for-byte and another pins the full analysis document against
``golden/analyze.report.json``, so any change to the exporters *or* the
analyzer shows up as a reviewable golden diff.
"""

import json
import pathlib

import pytest

from repro.obs import Tracer, export_chrome
from repro.obs.analyze import (analyze_events, analyze_file, build_forest,
                               critical_path, detect_stragglers,
                               format_report, name_breakdown,
                               utilization_series)

GOLDEN = pathlib.Path(__file__).parent / "golden"
GOLDEN_TRACE = GOLDEN / "analyze.trace.json"
GOLDEN_REPORT = GOLDEN / "analyze.report.json"


def build_fixture_tracers():
    """Two hand-timed runs: a shared scan (two jobs, two iterations,
    physical reads saved by sharing) and a FIFO baseline (full price)."""
    shared = Tracer(name="shared", clock=lambda: 0.0)
    shared.span_at("s3.run", 0.0, 10.0, lane="main", subject="run")
    shared.span_at("s3.iteration", 0.0, 4.0, lane="main", subject="iter_0",
                   job_ids=["a", "b"], blocks=2)
    shared.span_at("map.wave", 0.2, 3.8, lane="main", subject="iter_0",
                   blocks=2)
    shared.span_at("map.task", 0.2, 2.0, lane="w1", subject="blk_0",
                   job_ids=["a", "b"])
    shared.span_at("map.task", 0.2, 3.8, lane="w2", subject="blk_1",
                   job_ids=["a", "b"])
    shared.event_at(3.9, "io.wave", subject="iter_0", lane="main",
                    blocks=2, physical_blocks=2)
    shared.span_at("s3.iteration", 4.0, 9.0, lane="main", subject="iter_1",
                   job_ids=["a"], blocks=2)
    shared.span_at("map.wave", 4.1, 8.8, lane="main", subject="iter_1",
                   blocks=2)
    shared.span_at("map.task", 4.2, 5.0, lane="w1", subject="blk_2",
                   job_ids=["a"])
    shared.span_at("map.task", 4.2, 8.6, lane="w2", subject="blk_3",
                   job_ids=["a"])
    shared.event_at(8.9, "io.wave", subject="iter_1", lane="main",
                    blocks=2, physical_blocks=1)
    shared.span_at("reduce.job", 9.0, 9.6, lane="main", subject="a")
    shared.span_at("reduce.job", 9.6, 10.0, lane="main", subject="b")

    fifo = Tracer(name="fifo", clock=lambda: 0.0)
    fifo.span_at("fifo.run", 0.0, 8.0, lane="main", subject="run")
    fifo.span_at("fifo.job", 0.0, 4.0, lane="main", subject="a", blocks=2)
    fifo.span_at("map.task", 0.5, 1.5, lane="main", subject="blk_0")
    fifo.span_at("map.task", 1.5, 3.5, lane="main", subject="blk_1")
    fifo.event_at(3.9, "io.wave", subject="a", lane="main",
                  blocks=2, physical_blocks=2)
    fifo.span_at("fifo.job", 4.0, 8.0, lane="main", subject="b", blocks=2)
    fifo.span_at("map.task", 4.5, 5.5, lane="main", subject="blk_0")
    fifo.span_at("map.task", 5.5, 7.5, lane="main", subject="blk_1")
    fifo.event_at(7.9, "io.wave", subject="b", lane="main",
                  blocks=2, physical_blocks=2)
    return [shared, fifo]


def span(name, start, end, *, lane="main", tracer="t", subject="", **args):
    return {"ph": "X", "name": name, "ts": start, "dur": end - start,
            "lane": lane, "tracer": tracer, "subject": subject, "args": args}


def instant(name, ts, *, lane="main", tracer="t", subject="", **args):
    return {"ph": "i", "name": name, "ts": ts, "dur": 0.0, "lane": lane,
            "tracer": tracer, "subject": subject, "args": args}


# ------------------------------------------------------------------ golden

def test_fixture_trace_matches_golden(tmp_path):
    fresh = tmp_path / "analyze.trace.json"
    export_chrome(fresh, build_fixture_tracers())
    assert fresh.read_text(encoding="utf-8") \
        == GOLDEN_TRACE.read_text(encoding="utf-8")


def test_analysis_document_matches_golden():
    document = analyze_file(GOLDEN_TRACE)
    expected = json.loads(GOLDEN_REPORT.read_text(encoding="utf-8"))
    assert document == expected
    # Deterministic: a second pass serializes identically.
    again = analyze_file(GOLDEN_TRACE)
    assert json.dumps(document, sort_keys=True) \
        == json.dumps(again, sort_keys=True)


def test_golden_report_renders_every_section():
    text = format_report(analyze_file(GOLDEN_TRACE))
    assert "critical path" in text
    assert "time breakdown" in text
    assert "slot utilization" in text
    assert "wave occupancy" in text
    assert "scan-sharing attribution" in text


# ----------------------------------------------------------- forest/nesting

def test_cross_lane_tasks_nest_under_their_wave():
    forest = build_forest(
        [e for t in build_fixture_tracers()
         for e in _normalized(t)])
    (root,) = forest["shared"]
    assert root.name == "s3.run"
    waves = [s for s in root.walk() if s.name == "map.wave"]
    assert len(waves) == 2
    for wave in waves:
        tasks = [c for c in wave.children if c.name == "map.task"]
        assert len(tasks) == 2
        assert {t.lane for t in tasks} == {"w1", "w2"}


def _normalized(tracer):
    out = []
    for event in tracer.events():
        out.append({"ph": event.phase, "name": event.name, "ts": event.ts,
                    "dur": event.dur, "lane": event.lane,
                    "tracer": tracer.name, "subject": event.subject,
                    "args": event.args})
    return out


def test_equal_interval_same_name_spans_stay_siblings():
    # Concurrent sim tasks share exact tick boundaries; they must come
    # out as peers, never as a parent-child chain (same lane and across
    # lanes).
    events = [span("task.map", 0.0, 5.0, lane="node_0", subject=f"t{i}")
              for i in range(3)]
    events += [span("task.map", 0.0, 5.0, lane=f"node_{n}", subject=f"r{n}")
               for n in (1, 2)]
    forest = build_forest(events)
    roots = forest["t"]
    assert len(roots) == 5
    assert all(not r.children for r in roots)


def test_equal_interval_different_name_still_nests():
    events = [span("s3.segment", 0.0, 5.0, subject="seg_0"),
              span("s3.map_wave", 0.0, 5.0, subject="seg_0")]
    forest = build_forest(events)
    (root,) = forest["t"]
    assert root.name == "s3.segment"
    assert [c.name for c in root.children] == ["s3.map_wave"]


def test_self_time_does_not_double_count_parallel_children():
    events = [span("run", 0.0, 10.0),
              span("task", 1.0, 6.0, lane="w1"),
              span("task", 2.0, 7.0, lane="w2")]
    forest = build_forest(events)
    (root,) = forest["t"]
    assert root.child_time == pytest.approx(6.0)  # union [1, 7]
    assert root.self_time == pytest.approx(4.0)


# ------------------------------------------------------------ critical path

def test_critical_path_follows_latest_ending_child():
    document = analyze_file(GOLDEN_TRACE)
    run = next(r for r in document["runs"] if r["name"] == "s3.run")
    assert run["wall"] == pytest.approx(10.0)
    last = run["critical_path"][-1]
    assert (last["name"], last["subject"]) == ("reduce.job", "b")
    for step in run["critical_path"]:
        assert step["dur"] <= run["wall"] + 1e-9
        assert step["self_time"] <= step["dur"] + 1e-9


def test_name_breakdown_self_sums_to_wall_for_sequential_tree():
    events = [span("run", 0.0, 10.0),
              span("phase", 0.0, 4.0, subject="p0"),
              span("phase", 4.0, 9.0, subject="p1")]
    forest = build_forest(events)
    breakdown = name_breakdown(forest["t"])
    total_self = sum(stats["self"] for stats in breakdown.values())
    assert total_self == pytest.approx(10.0)
    assert breakdown["phase"]["count"] == 2


def test_runs_section_is_capped_to_longest_roots():
    events = [span("task.map", float(i), i + 0.5 + (i % 3) * 0.1,
                   subject=f"t{i}")
              for i in range(12)]
    document = analyze_events(events)
    assert len(document["runs"]) == 8
    assert document["runs_omitted"] == 4
    kept = {run["subject"] for run in document["runs"]}
    # The shortest roots (i % 3 == 0 -> dur 0.5) are the omitted ones.
    assert all(f"t{i}" in kept for i in range(12) if i % 3 == 2)


# ---------------------------------------------------------------- timelines

def test_utilization_values_within_bounds():
    forest = build_forest(
        [e for t in build_fixture_tracers() for e in _normalized(t)])
    series = utilization_series("shared", forest["shared"], bins=20)
    assert series is not None
    assert series.lanes == 2
    assert all(0.0 <= v <= 1.0 for v in series.values)
    assert 0.0 < series.mean < 1.0


def test_stragglers_flag_tasks_beyond_k_median():
    events = [span("s3.iteration", 0.0, 10.0, subject="iter_0"),
              span("map.task", 0.0, 1.0, lane="w1", subject="fast_a"),
              span("map.task", 0.0, 1.1, lane="w2", subject="fast_b"),
              span("map.task", 0.0, 1.2, lane="w3", subject="fast_c"),
              span("map.task", 0.0, 9.9, lane="w4", subject="slow")]
    forest = build_forest(events)
    found = detect_stragglers("t", forest["t"], k=2.0)
    assert [s.subject for s in found] == ["slow"]
    assert found[0].ratio == pytest.approx(9.9 / 1.15)
    assert not detect_stragglers("t", forest["t"], k=20.0)


def test_straggler_rejects_nonpositive_k():
    with pytest.raises(ValueError):
        detect_stragglers("t", [], k=0.0)


# -------------------------------------------------------------- attribution

def test_sharing_attribution_exact_per_job_split():
    document = analyze_file(GOLDEN_TRACE)
    by_tracer = {r["tracer"]: r for r in document["sharing"]}

    shared = by_tracer["shared"]
    assert shared["logical_blocks"] == 4
    assert shared["physical_blocks"] == 3
    assert shared["standalone_blocks"] == 6
    assert shared["sharing_ratio"] == pytest.approx(2.0)
    jobs = {j["job_id"]: j for j in shared["jobs"]}
    assert jobs["a"]["standalone_blocks"] == 4
    assert jobs["a"]["attributed_physical"] == pytest.approx(2.0)
    assert jobs["b"]["attributed_physical"] == pytest.approx(1.0)
    attributed = sum(j["attributed_physical"] for j in shared["jobs"])
    assert attributed == pytest.approx(shared["physical_blocks"])

    fifo = by_tracer["fifo"]
    assert fifo["sharing_ratio"] == pytest.approx(1.0)
    assert all(j["sharing_ratio"] == pytest.approx(1.0)
               for j in fifo["jobs"])


def test_sharing_strictly_better_under_s3_than_fifo():
    document = analyze_file(GOLDEN_TRACE)
    by_tracer = {r["tracer"]: r for r in document["sharing"]}
    assert by_tracer["shared"]["sharing_ratio"] \
        > by_tracer["fifo"]["sharing_ratio"]


def test_unattributable_waves_yield_empty_job_table():
    events = [span("s3.iteration", 0.0, 4.0, subject="iter_0"),
              instant("io.wave", 3.9, subject="iter_0",
                      blocks=2, physical_blocks=2)]
    document = analyze_events(events)
    (report,) = document["sharing"]
    assert report["jobs"] == []
    assert report["physical_blocks"] == 2


# --------------------------------------------------------- shard balance

def shard_read(ts, shard, *, fallback=False, tracer="s3"):
    return instant("shard.read", ts, tracer=tracer, subject="store",
                   shard=shard, block=0, fallback=fallback)


def test_shard_balance_counts_reads_and_failovers():
    events = [
        span("s3.run", 0.0, 10.0, tracer="s3", subject="run"),
        shard_read(1.0, "shard_00"),
        shard_read(2.0, "shard_01"),
        shard_read(3.0, "shard_01", fallback=True),
        instant("shard.failover", 3.0, tracer="s3", subject="store",
                block=4, **{"from": "shard_00", "to": "shard_01"}),
        shard_read(4.0, "shard_00"),
    ]
    table = analyze_events(events)["shards"]["s3"]
    assert table["shard_00"] == {"reads": 2, "fallback_reads": 0,
                                 "failovers": 0, "fraction": 0.5}
    assert table["shard_01"] == {"reads": 2, "fallback_reads": 1,
                                 "failovers": 1, "fraction": 0.5}


def test_shard_balance_absent_for_single_store_traces():
    events = [span("fifo.run", 0.0, 5.0, tracer="fifo", subject="run")]
    document = analyze_events(events)
    assert document["shards"] == {}
    assert "per-shard read balance" not in format_report(document)


def test_shard_balance_renders_in_report():
    events = [
        span("s3.run", 0.0, 10.0, tracer="s3", subject="run"),
        shard_read(1.0, "shard_00"),
        shard_read(2.0, "shard_01", fallback=True),
    ]
    text = format_report(analyze_events(events))
    assert "per-shard read balance" in text
    assert "shard_00" in text and "shard_01" in text
