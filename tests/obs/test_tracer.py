"""Tracer behaviour: spans, events, nesting depth, disabled fast path."""

import pytest

from repro.obs import NULL_TRACER, PHASE_INSTANT, PHASE_SPAN, Tracer


class StepClock:
    """Deterministic clock: advances by ``step`` on every reading."""

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self.t = start
        self.step = step

    def __call__(self) -> float:
        now = self.t
        self.t += self.step
        return now


def test_span_records_on_exit_with_duration():
    tracer = Tracer(clock=StepClock())
    with tracer.span("map.wave", subject="w0", lane="main", blocks=3):
        pass
    (event,) = tracer.events()
    assert event.phase == PHASE_SPAN
    assert event.name == "map.wave"
    assert event.subject == "w0"
    assert event.lane == "main"
    assert event.ts == 0.0 and event.dur == 1.0
    assert event.args == {"blocks": 3}


def test_nested_spans_record_depth_and_inner_first():
    tracer = Tracer(clock=StepClock())
    with tracer.span("outer", lane="main"):
        with tracer.span("inner", lane="main"):
            pass
    inner, outer = tracer.events()
    assert (inner.name, inner.depth) == ("inner", 1)
    assert (outer.name, outer.depth) == ("outer", 0)
    # Inner span lies within the outer one.
    assert outer.ts <= inner.ts
    assert inner.ts + inner.dur <= outer.ts + outer.dur


def test_span_on_exception_records_error_and_restores_depth():
    tracer = Tracer(clock=StepClock())
    with pytest.raises(RuntimeError):
        with tracer.span("boom", lane="main"):
            raise RuntimeError("nope")
    (event,) = tracer.events()
    assert event.args["error"] == "RuntimeError"
    with tracer.span("after", lane="main"):
        pass
    assert tracer.events()[-1].depth == 0


def test_event_records_instant_at_clock_time():
    tracer = Tracer(clock=StepClock(start=7.0))
    tracer.event("io.wave", subject="iter_0", lane="main", blocks=2)
    (event,) = tracer.events()
    assert event.phase == PHASE_INSTANT
    assert event.ts == 7.0 and event.dur == 0.0
    assert event.args == {"blocks": 2}


def test_event_at_and_span_at_take_explicit_times():
    tracer = Tracer(clock=lambda: 0.0)
    tracer.event_at(3.5, "s3.pointer", subject="f", lane="s3")
    tracer.span_at("s3.segment", 1.0, 4.0, subject="it0", lane="s3", depth=1)
    instant, span = tracer.events()
    assert instant.ts == 3.5
    assert (span.ts, span.dur, span.depth) == (1.0, 3.0, 1)


def test_span_at_clamps_negative_duration():
    tracer = Tracer(clock=lambda: 0.0)
    event = tracer.span_at("x", 5.0, 4.0, lane="l")
    assert event is not None and event.dur == 0.0


def test_lane_defaults_to_thread_name():
    tracer = Tracer(clock=StepClock())
    tracer.event("e")
    assert tracer.events()[0].lane == "MainThread"


def test_disabled_tracer_records_nothing():
    tracer = Tracer(clock=StepClock(), enabled=False)
    with tracer.span("s"):
        tracer.event("e")
    tracer.event_at(1.0, "e2")
    tracer.span_at("s2", 0.0, 1.0)
    assert len(tracer) == 0
    assert tracer.events() == ()


def test_null_tracer_is_disabled_and_shared():
    assert not NULL_TRACER.enabled
    NULL_TRACER.event("ignored")
    assert len(NULL_TRACER) == 0


def test_spans_and_instants_views():
    tracer = Tracer(clock=StepClock())
    tracer.event("i1")
    with tracer.span("s1"):
        pass
    assert [e.name for e in tracer.spans()] == ["s1"]
    assert [e.name for e in tracer.instants()] == ["i1"]


def test_clear_keeps_enabled_state():
    tracer = Tracer(clock=StepClock())
    tracer.event("e")
    tracer.clear()
    assert len(tracer) == 0 and tracer.enabled


def test_args_mapping_merges_with_extras():
    tracer = Tracer(clock=StepClock())
    tracer.event("e", args={"a": 1}, b=2)
    assert tracer.events()[0].args == {"a": 1, "b": 2}
