"""MetricsRegistry: counters, gauges, histograms, ReadStats absorption."""

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.storage import ReadStats
from repro.obs import MetricsRegistry


def test_counter_accumulates_and_rejects_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("io.blocks_read")
    counter.inc(4)
    counter.inc()
    assert registry.counter("io.blocks_read").value == 5
    with pytest.raises(ExecutionError, match="cannot decrease"):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("prefetch.ahead")
    gauge.set(3.0)
    gauge.add(-1.0)
    assert gauge.value == 2.0


def test_histogram_buckets_and_mean():
    registry = MetricsRegistry()
    hist = registry.histogram("wave.blocks", buckets=(1.0, 4.0, 16.0))
    for value in (1, 2, 4, 5, 100):
        hist.observe(value)
    assert hist.counts == [1, 2, 1, 1]  # <=1, <=4, <=16, overflow
    assert hist.count == 5
    assert hist.mean == pytest.approx(112 / 5)


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ExecutionError, match="strictly increase"):
        registry.histogram("bad", buckets=(4.0, 4.0))
    with pytest.raises(ExecutionError, match="at least one"):
        registry.histogram("empty", buckets=())


def test_kind_collision_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ExecutionError, match="is a counter, not a gauge"):
        registry.gauge("x")


def test_absorb_read_stats_registers_all_fields_including_zero():
    registry = MetricsRegistry()
    delta = ReadStats(blocks_read=3, bytes_read=120)
    registry.absorb_read_stats(delta)
    snap = registry.snapshot()
    assert snap["io.blocks_read"] == 3
    assert snap["io.bytes_read"] == 120
    # A field that did not move is still present as an explicit zero.
    assert snap["io.cache_hits"] == 0
    registry.absorb_read_stats(ReadStats(blocks_read=2))
    assert registry.counter("io.blocks_read").value == 5


def test_snapshot_and_format_table():
    registry = MetricsRegistry()
    registry.counter("a").inc(2)
    registry.gauge("b").set(1.5)
    registry.histogram("c", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["a"] == 2 and snap["b"] == 1.5
    assert snap["c"]["count"] == 1
    table = registry.format_table()
    assert "a" in table and "count=1" in table
    assert len(registry) == 3


def test_empty_registry_table():
    assert MetricsRegistry().format_table() == "(no metrics recorded)"
