"""MetricsRegistry: counters, gauges, histograms, ReadStats absorption."""

import dataclasses
import threading

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.storage import ReadStats
from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


def test_counter_accumulates_and_rejects_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("io.blocks_read")
    counter.inc(4)
    counter.inc()
    assert registry.counter("io.blocks_read").value == 5
    with pytest.raises(ExecutionError, match="cannot decrease"):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("prefetch.ahead")
    gauge.set(3.0)
    gauge.add(-1.0)
    assert gauge.value == 2.0


def test_histogram_buckets_and_mean():
    registry = MetricsRegistry()
    hist = registry.histogram("wave.blocks", buckets=(1.0, 4.0, 16.0))
    for value in (1, 2, 4, 5, 100):
        hist.observe(value)
    assert hist.counts == [1, 2, 1, 1]  # <=1, <=4, <=16, overflow
    assert hist.count == 5
    assert hist.mean == pytest.approx(112 / 5)


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ExecutionError, match="strictly increase"):
        registry.histogram("bad", buckets=(4.0, 4.0))
    with pytest.raises(ExecutionError, match="at least one"):
        registry.histogram("empty", buckets=())


def test_kind_collision_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ExecutionError, match="is a counter, not a gauge"):
        registry.gauge("x")


def test_absorb_read_stats_registers_all_fields_including_zero():
    registry = MetricsRegistry()
    delta = ReadStats(blocks_read=3, bytes_read=120)
    registry.absorb_read_stats(delta)
    snap = registry.snapshot()
    assert snap["io.blocks_read"] == 3
    assert snap["io.bytes_read"] == 120
    # A field that did not move is still present as an explicit zero.
    assert snap["io.cache_hits"] == 0
    registry.absorb_read_stats(ReadStats(blocks_read=2))
    assert registry.counter("io.blocks_read").value == 5


def test_snapshot_and_format_table():
    registry = MetricsRegistry()
    registry.counter("a").inc(2)
    registry.gauge("b").set(1.5)
    registry.histogram("c", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["a"] == 2 and snap["b"] == 1.5
    assert snap["c"]["count"] == 1
    table = registry.format_table()
    assert "a" in table and "count=1" in table
    assert len(registry) == 3


def test_empty_registry_table():
    assert MetricsRegistry().format_table() == "(no metrics recorded)"


# ---------------------------------------------------------------------------
# Histogram.percentile edge cases


def test_percentile_empty_histogram_is_zero():
    hist = MetricsRegistry().histogram("latency", buckets=(1.0, 4.0))
    assert hist.percentile(50) == 0.0
    assert hist.percentile(99) == 0.0


def test_percentile_rejects_out_of_range_rank():
    hist = MetricsRegistry().histogram("latency", buckets=(1.0,))
    with pytest.raises(ExecutionError, match=r"\[0, 100\]"):
        hist.percentile(-1)
    with pytest.raises(ExecutionError, match=r"\[0, 100\]"):
        hist.percentile(100.5)


def test_percentile_single_observation_interpolates_its_bucket():
    hist = MetricsRegistry().histogram("latency", buckets=(1.0, 4.0))
    hist.observe(2.0)  # lands in the (1, 4] bucket
    # Every rank interpolates across that one bucket's edges.
    assert hist.percentile(0) == pytest.approx(1.0)
    assert hist.percentile(50) == pytest.approx(2.5)
    assert hist.percentile(100) == pytest.approx(4.0)


def test_percentile_one_bucket_histogram_and_overflow_clamp():
    hist = MetricsRegistry().histogram("latency", buckets=(1.0,))
    hist.observe(0.5)
    # Single bucket: first edge is 0, so rank interpolates [0, 1].
    assert hist.percentile(50) == pytest.approx(0.5)
    hist.observe(5.0)  # overflow bucket
    # Ranks landing past the last bound clamp to it.
    assert hist.percentile(99) == 1.0


def test_instruments_preserves_kinds_sorted():
    registry = MetricsRegistry()
    registry.gauge("b.gauge")
    registry.counter("a.counter")
    registry.histogram("c.hist", buckets=(1.0,))
    instruments = registry.instruments()
    assert list(instruments) == ["a.counter", "b.gauge", "c.hist"]
    assert isinstance(instruments["a.counter"], Counter)
    assert isinstance(instruments["b.gauge"], Gauge)
    assert isinstance(instruments["c.hist"], Histogram)


# ---------------------------------------------------------------------------
# Concurrency (run under REPRO_RACECHECK=1 / REPRO_LOCKCHECK=1 in CI)


def test_registry_concurrent_updates_and_snapshots():
    registry = MetricsRegistry()
    rounds = 200
    errors: list[BaseException] = []

    def writer() -> None:
        try:
            for i in range(rounds):
                registry.counter("shared.counter").inc()
                registry.gauge("shared.gauge").add(1.0)
                registry.histogram("shared.hist",
                                   buckets=(1.0, 4.0)).observe(i % 5)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def reader() -> None:
        try:
            for _ in range(rounds):
                registry.snapshot()
                registry.instruments()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert registry.counter("shared.counter").value == 4 * rounds
    assert registry.gauge("shared.gauge").value == pytest.approx(4 * rounds)
    assert registry.histogram("shared.hist",
                              buckets=(1.0, 4.0)).count == 4 * rounds


# ---------------------------------------------------------------------------
# absorb_read_stats with the sharded-store fields


def test_absorb_read_stats_covers_sharded_fields():
    registry = MetricsRegistry()
    delta = ReadStats(blocks_read=2, bytes_read=64,
                      bytes_blocks_read=2, replica_fallback_reads=1)
    registry.absorb_read_stats(delta)
    snap = registry.snapshot()
    assert snap["io.bytes_blocks_read"] == 2
    assert snap["io.replica_fallback_reads"] == 1
    # Every ReadStats field lands as a counter, none silently dropped.
    for field in dataclasses.fields(ReadStats):
        assert f"io.{field.name}" in snap
