"""Perf-regression gate: spec validation, comparisons, rendering, CLI."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.regress import (DEFAULT_SPECS, MetricSpec, compare,
                               format_regression, lookup, specs_for)


def one(path="m", direction="eq", **kwargs):
    return (MetricSpec(path, direction, **kwargs),)


def test_spec_rejects_bad_direction_and_negative_tolerance():
    with pytest.raises(ValueError):
        MetricSpec("m", "lt")
    with pytest.raises(ValueError):
        MetricSpec("m", "le", rel_tol=-0.1)


def test_lookup_dotted_path():
    doc = {"a": {"b": {"c": 7}}, "x": 1}
    assert lookup(doc, "a.b.c") == 7
    assert lookup(doc, "x") == 1
    assert lookup(doc, "a.b.missing") is None
    assert lookup(doc, "x.deeper") is None


def test_direction_le_allows_improvement_and_slack():
    specs = one(direction="le", abs_tol=2.0)
    assert compare("n", {"m": 10}, {"m": 5}, specs).ok      # improved
    assert compare("n", {"m": 10}, {"m": 12}, specs).ok     # within slack
    assert not compare("n", {"m": 10}, {"m": 13}, specs).ok


def test_direction_ge_allows_improvement_and_slack():
    specs = one(direction="ge", rel_tol=0.1)
    assert compare("n", {"m": 10.0}, {"m": 11.0}, specs).ok
    assert compare("n", {"m": 10.0}, {"m": 9.0}, specs).ok
    assert not compare("n", {"m": 10.0}, {"m": 8.9}, specs).ok


def test_direction_eq_is_two_sided():
    specs = one(abs_tol=0.5)
    assert compare("n", {"m": 1.0}, {"m": 1.4}, specs).ok
    assert not compare("n", {"m": 1.0}, {"m": 1.6}, specs).ok
    assert not compare("n", {"m": 1.0}, {"m": 0.4}, specs).ok


def test_slack_is_max_of_rel_and_abs():
    specs = one(direction="le", rel_tol=0.1, abs_tol=3.0)
    assert compare("n", {"m": 10.0}, {"m": 13.0}, specs).ok  # abs wins
    assert compare("n", {"m": 100.0}, {"m": 110.0}, specs).ok  # rel wins
    assert not compare("n", {"m": 100.0}, {"m": 111.0}, specs).ok


def test_missing_metric_required_vs_optional():
    required = compare("n", {"m": 1}, {}, one())
    assert not required.ok
    assert "missing in current" in required.results[0].detail
    optional = compare("n", {}, {"m": 1}, one(required=False))
    assert optional.ok
    assert optional.results[0].skipped


def test_boolean_invariants_compare_exactly():
    assert compare("n", {"m": True}, {"m": True}, one()).ok
    report = compare("n", {"m": True}, {"m": False}, one())
    assert not report.ok


def test_skipped_marker_string_is_host_difference_not_regression():
    # Baseline recorded on a host where the check could not run.
    skipped = "skipped (single CPU)"
    report = compare("n", {"m": skipped}, {"m": True}, one())
    assert report.ok and report.results[0].skipped
    # ... unless the current run actively fails the check.
    report = compare("n", {"m": skipped}, {"m": False}, one())
    assert not report.ok


def test_non_numeric_values_fail_rather_than_pass_silently():
    assert not compare("n", {"m": [1]}, {"m": [1]}, one()).ok


def test_format_regression_table():
    report = compare("n", {"good": 1.0, "bad": 1.0},
                     {"good": 1.0, "bad": 2.0},
                     (MetricSpec("good"), MetricSpec("bad"),
                      MetricSpec("opt", required=False)))
    text = format_regression(report)
    assert "REGRESSED" in text
    assert "[  ok] good" in text
    assert "[FAIL] bad" in text
    assert "[skip] opt" in text


def test_default_specs_gate_no_wall_clock_seconds():
    for specs in DEFAULT_SPECS.values():
        for spec in specs:
            assert not spec.path.endswith("_s")
            assert "seconds" not in spec.path


def test_specs_for_unknown_benchmark_raises():
    assert specs_for({"benchmark": "bench_cache"}) \
        == DEFAULT_SPECS["bench_cache"]
    with pytest.raises(ValueError):
        specs_for({"benchmark": "bench_unknown"})


# ----------------------------------------------------------------- CLI gate

def _payload(tmp_path, name, **overrides):
    doc = {"benchmark": "bench_trace",
           "checks": {"traced_io_counters_identical": True,
                      "traced_outputs_identical": True},
           "traced_events": 100,
           "disabled_overhead_fraction": 0.01}
    doc.update(overrides)
    path = tmp_path / name
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path


def test_cli_regress_ok(tmp_path, capsys):
    base = _payload(tmp_path, "base.json")
    cur = _payload(tmp_path, "cur.json", traced_events=120)
    assert main(["regress", str(base), str(cur)]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_regress_detects_regression(tmp_path, capsys):
    base = _payload(tmp_path, "base.json")
    cur = _payload(tmp_path, "cur.json",
                   checks={"traced_io_counters_identical": False,
                           "traced_outputs_identical": True})
    assert main(["regress", str(base), str(cur)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "traced_io_counters_identical" in out


def test_cli_regress_json_output(tmp_path, capsys):
    base = _payload(tmp_path, "base.json")
    cur = _payload(tmp_path, "cur.json")
    assert main(["regress", "--json", str(base), str(cur)]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert any(r["path"] == "traced_events" for r in document["results"])


def test_cli_regress_bad_payload_exits_2(tmp_path, capsys):
    base = _payload(tmp_path, "base.json")
    missing = tmp_path / "nope.json"
    assert main(["regress", str(base), str(missing)]) == 2
    assert "error:" in capsys.readouterr().err
