"""Tracing under parallel map backends: per-lane span trees stay sane.

Each worker thread records into its own lane (the thread name), so even
with concurrent recording the exported structure must be well-nested
per lane: spans at the same depth never partially overlap, and deeper
spans lie inside an enclosing shallower span.
"""

import tempfile
from pathlib import Path

import pytest

from repro.common.config import ExecutionConfig
from repro.localrt.jobs import wordcount_job
from repro.localrt.runners import SharedScanRunner
from repro.localrt.storage import BlockStore
from repro.obs import Tracer

_EPS = 1e-6


@pytest.fixture(scope="module")
def corpus():
    with tempfile.TemporaryDirectory() as tmp:
        lines = [f"the quick brown fox number {i}" for i in range(300)]
        yield BlockStore.create(Path(tmp) / "corpus", lines,
                                block_size_bytes=256)


def _assert_well_nested_per_lane(spans):
    by_lane = {}
    for span in spans:
        by_lane.setdefault(span.lane, []).append(span)
    for lane, lane_spans in by_lane.items():
        # Same-depth spans in one lane must not partially overlap.
        for depth in {s.depth for s in lane_spans}:
            level = sorted((s for s in lane_spans if s.depth == depth),
                           key=lambda s: (s.ts, -s.dur))
            for a, b in zip(level, level[1:]):
                disjoint = a.ts + a.dur <= b.ts + _EPS
                nested = b.ts + b.dur <= a.ts + a.dur + _EPS
                assert disjoint or nested, (
                    f"lane {lane}: {a.name} and {b.name} partially overlap")
        # Every deeper span lies inside some shallower span of the lane.
        for span in lane_spans:
            if span.depth == 0:
                continue
            parents = [p for p in lane_spans if p.depth == span.depth - 1
                       and p.ts <= span.ts + _EPS
                       and span.ts + span.dur <= p.ts + p.dur + _EPS]
            assert parents, (
                f"lane {lane}: {span.name} (depth {span.depth}) has no "
                "enclosing span")


def test_threads_backend_produces_well_nested_span_tree(corpus):
    tracer = Tracer(name="test")
    runner = SharedScanRunner(
        corpus, ExecutionConfig(map_backend="threads", map_workers=4,
                                blocks_per_segment=4), tracer=tracer)
    report = runner.run([wordcount_job("wc0", "^th.*"),
                         wordcount_job("wc1", ".*ing$")])
    assert report.results  # the run actually did work

    spans = list(tracer.spans())
    tasks = [s for s in spans if s.name == "map.task"]
    # Every block of every wave produced exactly one task span.
    assert len(tasks) == corpus.num_blocks
    _assert_well_nested_per_lane(spans)

    # Worker lanes exist and are distinct from the coordinating lane.
    wave_lanes = {s.lane for s in spans if s.name == "map.wave"}
    task_lanes = {s.lane for s in tasks}
    assert wave_lanes and task_lanes


def test_serial_backend_tasks_nest_inside_wave(corpus):
    tracer = Tracer(name="test")
    runner = SharedScanRunner(
        corpus, ExecutionConfig(blocks_per_segment=4), tracer=tracer)
    runner.run([wordcount_job("wc0", "^th.*")])
    spans = list(tracer.spans())
    _assert_well_nested_per_lane(spans)
    # Serial path: tasks record on the same lane as the wave, one level
    # deeper (inside s3.run > s3.iteration > map.wave).
    waves = [s for s in spans if s.name == "map.wave"]
    tasks = [s for s in spans if s.name == "map.task"]
    assert waves and tasks
    assert {t.depth for t in tasks} == {waves[0].depth + 1}
