"""``python -m repro.obs`` CLI: summary, analyze, convert subcommands."""

import json
import pathlib

import pytest

from repro.obs import Tracer, export_chrome, export_jsonl, load_events
from repro.obs.cli import main


@pytest.fixture()
def trace_file(tmp_path):
    tracer = Tracer(name="t", clock=lambda: 0.0)
    tracer.span_at("map.wave", 0.0, 2.0, lane="main", blocks=3)
    tracer.event_at(1.0, "io.wave", subject="iter_0", lane="main")
    path = tmp_path / "run.trace.json"
    export_chrome(path, [tracer])
    return path


def test_summary_table(trace_file, capsys):
    assert main(["summary", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "2 events" in out
    assert "map.wave" in out and "io.wave" in out


def test_summary_json(trace_file, capsys):
    assert main(["summary", "--json", str(trace_file)]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["events"] == 2
    assert summary["names"]["map.wave"]["count"] == 1


def test_summary_missing_file_exits_2(tmp_path, capsys):
    assert main(["summary", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_summary_corrupt_file_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.trace.json"
    bad.write_text("{oops", encoding="utf-8")
    assert main(["summary", str(bad)]) == 2
    assert "unreadable" in capsys.readouterr().err


GOLDEN_TRACE = pathlib.Path(__file__).parent / "golden" / "analyze.trace.json"


def test_analyze_text_report(capsys):
    assert main(["analyze", str(GOLDEN_TRACE)]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "scan-sharing attribution" in out
    assert "sharing_ratio=2.00x" in out


def test_analyze_json_report(capsys):
    assert main(["analyze", str(GOLDEN_TRACE), "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    ratios = {r["tracer"]: r["sharing_ratio"] for r in document["sharing"]}
    assert ratios["shared"] > ratios["fifo"] == 1.0


def test_analyze_honors_bins_and_straggler_k(capsys):
    assert main(["analyze", str(GOLDEN_TRACE), "--format", "json",
                 "--bins", "10", "--straggler-k", "1.1"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert all(len(series["values"]) == 10
               for series in document["utilization"].values())


def test_analyze_missing_file_exits_2(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_convert_chrome_to_jsonl_and_back(trace_file, tmp_path, capsys):
    jsonl = tmp_path / "run.jsonl"
    assert main(["convert", str(trace_file), "-o", str(jsonl),
                 "--format", "jsonl"]) == 0
    assert "wrote 2 events" in capsys.readouterr().out
    assert len(load_events(jsonl)) == 2

    back = tmp_path / "back.trace.json"
    assert main(["convert", str(jsonl), "-o", str(back)]) == 0
    events = load_events(back)
    assert {e["name"] for e in events} == {"map.wave", "io.wave"}
    wave = next(e for e in events if e["name"] == "map.wave")
    assert wave["dur"] == pytest.approx(2.0)


def test_convert_from_jsonl_input(tmp_path, capsys):
    tracer = Tracer(name="t", clock=lambda: 0.0)
    tracer.event_at(0.5, "e", lane="l")
    src = tmp_path / "in.jsonl"
    export_jsonl(src, [tracer])
    out = tmp_path / "out.trace.json"
    assert main(["convert", str(src), "-o", str(out)]) == 0
    document = json.loads(out.read_text(encoding="utf-8"))
    assert any(e.get("name") == "e" for e in document["traceEvents"])


def test_module_entry_point(trace_file):
    import subprocess
    import sys
    result = subprocess.run(
        [sys.executable, "-m", "repro.obs", "summary", str(trace_file)],
        capture_output=True, text=True, check=False)
    assert result.returncode == 0
    assert "2 events" in result.stdout
