"""TraceSession: adoption, nesting, export of multiple clock domains."""

import json

from repro.obs import TraceSession, Tracer, active_session


def test_no_session_by_default():
    assert active_session() is None


def test_session_activation_and_nesting():
    with TraceSession("outer") as outer:
        assert active_session() is outer
        with TraceSession("inner") as inner:
            assert active_session() is inner  # innermost wins
        assert active_session() is outer
    assert active_session() is None


def test_session_owns_a_tracer_and_adopts_more():
    session = TraceSession("s")
    assert session.tracers() == (session.tracer,)
    extra = Tracer(name="sim", clock=lambda: 0.0)
    session.adopt(extra)
    session.adopt(extra)  # idempotent
    assert session.tracers() == (session.tracer, extra)


def test_adopt_renames_duplicate_tracer_names():
    # One simulator per sweep point, each with a tracer called "sim" on
    # its own virtual clock: exporting them under one name would merge
    # unrelated timelines, so adoption suffixes #2, #3, ...
    session = TraceSession("s")
    first = session.adopt(Tracer(name="sim", clock=lambda: 0.0))
    second = session.adopt(Tracer(name="sim", clock=lambda: 0.0))
    third = session.adopt(Tracer(name="sim", clock=lambda: 0.0))
    assert first.name == "sim"
    assert second.name == "sim#2"
    assert third.name == "sim#3"
    session.adopt(second)  # re-adoption does not rename again
    assert second.name == "sim#2"


def test_new_tracer_is_adopted_and_enabled():
    session = TraceSession("s")
    tracer = session.new_tracer("worker", clock=lambda: 1.0)
    assert tracer.enabled
    assert tracer in session.tracers()


def test_event_count_spans_all_tracers():
    session = TraceSession("s")
    session.tracer.event("a")
    session.new_tracer("t2", clock=lambda: 0.0).event("b")
    assert session.event_count() == 2


def test_export_writes_every_adopted_tracer(tmp_path):
    session = TraceSession("s")
    sim = session.new_tracer("sim", clock=lambda: 2.0)
    sim.event("job.submit", subject="j1", lane="events")
    session.tracer.event("experiment.start", lane="main")
    path = session.export(tmp_path / "out.trace.json")
    document = json.loads(path.read_text(encoding="utf-8"))
    names = {e["name"] for e in document["traceEvents"]}
    assert {"job.submit", "experiment.start"} <= names
    processes = {e["args"]["name"] for e in document["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"s", "sim"} <= processes


def test_export_jsonl_format(tmp_path):
    session = TraceSession("s")
    session.tracer.event("e")
    path = session.export(tmp_path / "out.jsonl", format="jsonl")
    lines = path.read_text(encoding="utf-8").strip().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["name"] == "e"


def test_export_unknown_format(tmp_path):
    session = TraceSession("s")
    try:
        session.export(tmp_path / "x", format="xml")
    except ValueError as exc:
        assert "unknown trace format" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")


def test_summary_renders_counts():
    session = TraceSession("s")
    session.tracer.event("io.wave")
    text = session.summary()
    assert "1 events" in text and "io.wave" in text
