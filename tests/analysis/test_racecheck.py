"""Lockset race detector: unit behaviour plus service fault injection."""

from __future__ import annotations

import threading
from dataclasses import dataclass

import pytest

from repro.analysis.lockgraph import OrderedLock
from repro.analysis.racecheck import (
    RaceCheckedMixin,
    RaceError,
    race_checked,
    register_instance,
    reset_racecheck_state,
    set_racecheck,
)


@pytest.fixture(autouse=True)
def checking_on():
    """Force the detector on with a clean table; restore env-driven state."""
    set_racecheck(True)
    reset_racecheck_state()
    yield
    reset_racecheck_state()
    set_racecheck(None)


class Box:
    """Minimal guarded object for the unit tests."""

    def __init__(self) -> None:
        self._lock = OrderedLock("Box._lock")
        self.value = 0
        register_instance(self, fields=("value",), guard="Box._lock",
                          label="Box")


def in_thread(fn, name="second"):
    """Run ``fn`` in a fresh thread; re-raise whatever it raised."""
    error = []

    def target():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - test relay
            error.append(exc)

    thread = threading.Thread(target=target, name=name)
    thread.start()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    if error:
        raise error[0]


# ------------------------------------------------------------- unit behaviour
def test_single_thread_writes_never_race():
    box = Box()
    box.value = 1          # unlocked
    with box._lock:
        box.value = 2      # locked
    box.value = 3          # unlocked again: still the exclusive phase


def test_consistently_guarded_cross_thread_writes_are_clean():
    box = Box()
    with box._lock:
        box.value = 1

    def guarded():
        with box._lock:
            box.value = 2

    in_thread(guarded)
    with box._lock:
        box.value = 3


def test_unguarded_second_thread_write_raises():
    box = Box()
    with box._lock:
        box.value = 1
    with pytest.raises(RaceError) as excinfo:
        in_thread(lambda: setattr(box, "value", 2), name="rogue")
    message = str(excinfo.value)
    assert "Box.value" in message
    assert "expected guard: Box._lock" in message
    assert "thread 'rogue' holding []" in message
    assert "Box._lock" in message.split("last write:")[1]


def test_shared_phase_catches_later_unguarded_writer():
    box = Box()
    with box._lock:
        box.value = 1
    def guarded():
        with box._lock:
            box.value = 2

    in_thread(guarded)
    # Back on the main thread: the attribute is shared now, so even the
    # first writer may no longer touch it unlocked.
    with pytest.raises(RaceError):
        box.value = 3


def test_untracked_fields_are_not_intercepted():
    box = Box()
    box.other = 1
    in_thread(lambda: setattr(box, "other", 2))


def test_disabled_registration_is_a_no_op():
    set_racecheck(False)
    box = Box.__new__(Box)
    box._lock = OrderedLock("Box._lock")
    box.value = 0
    cls_before = type(box)
    register_instance(box, fields=("value",))
    assert type(box) is cls_before
    in_thread(lambda: setattr(box, "value", 2))  # no checking, no raise


def test_race_checked_decorator_registers_instances():
    @race_checked(fields=("n",), guard="D._lock")
    @dataclass
    class D:
        n: int = 0

    lock = OrderedLock("D._lock")
    d = D()
    with lock:
        d.n = 1
    with pytest.raises(RaceError):
        in_thread(lambda: setattr(d, "n", 2))


def test_mixin_registers_instances():
    class M(RaceCheckedMixin):
        RACE_FIELDS = ("state",)
        RACE_GUARD = "M._lock"

        def __init__(self) -> None:
            self._lock = OrderedLock("M._lock")
            self.state = "new"
            self._register_racecheck()

    m = M()
    with m._lock:
        m.state = "running"
    with pytest.raises(RaceError) as excinfo:
        in_thread(lambda: setattr(m, "state", "done"))
    assert "M.state" in str(excinfo.value)


# -------------------------------------------------------- service fault
@pytest.fixture
def store(tmp_path):
    from repro.localrt.storage import BlockStore
    lines = [f"alpha beta gamma line {i:04d}" for i in range(160)]
    return BlockStore.create(tmp_path / "corpus", lines,
                             block_size_bytes=512)


def test_detector_fires_on_unguarded_service_mutation(store):
    """Fault injection: a second thread mutating SchedulerService state
    without the service condition variable must trip the detector.

    This is the end-to-end proof that the shipped instrumentation is
    live — if ``register_instance`` were stubbed out (or the service
    stopped registering its fields) no ``RaceError`` would be raised
    and this test would fail.
    """
    from repro.common.config import ExecutionConfig
    from repro.localrt.jobs import wordcount_job
    from repro.service.config import ServiceConfig
    from repro.service.core import SchedulerService

    service = SchedulerService(store, ServiceConfig(
        execution=ExecutionConfig(blocks_per_segment=4)))
    service.submit(wordcount_job("wc", r"alpha"), tenant="t")

    # Control: the same cross-thread mutation under the service's
    # condition variable is legitimate and must not raise.
    def guarded():
        with service._cond:
            service._pending += 1
    in_thread(guarded)

    with pytest.raises(RaceError) as excinfo:
        def unguarded():
            service._pending += 1
        in_thread(unguarded, name="rogue")
    message = str(excinfo.value)
    assert "SchedulerService._pending" in message
    assert "expected guard: SchedulerService._cond" in message

    # Undo the two injected increments so the service can still drain.
    def repair():
        with service._cond:
            service._pending -= 2
    in_thread(repair)
    while service.step():
        pass
