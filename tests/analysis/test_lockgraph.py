"""OrderedLock: acquisition-order recording and cycle detection."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.lockgraph import (
    LockOrderError,
    OrderedLock,
    lock_order_graph,
    lockcheck_enabled,
    reset_lock_graph,
    set_lockcheck,
)


@pytest.fixture(autouse=True)
def checking_on():
    """Force checking on with a clean graph; restore env-driven state."""
    set_lockcheck(True)
    reset_lock_graph()
    yield
    reset_lock_graph()
    set_lockcheck(None)


def test_consistent_order_is_fine():
    a, b = OrderedLock("t1.A"), OrderedLock("t1.B")
    for _ in range(3):
        with a:
            with b:
                pass
    graph = lock_order_graph()
    assert "t1.B" in graph["t1.A"]


def test_ab_ba_cycle_is_detected():
    a, b = OrderedLock("t2.A"), OrderedLock("t2.B")
    with a:
        with b:
            pass
    with pytest.raises(LockOrderError, match="t2.A"):
        with b:
            with a:
                pass


def test_cycle_detection_releases_the_inner_lock():
    a, b = OrderedLock("t3.A"), OrderedLock("t3.B")
    with a, b:
        pass
    with b:
        with pytest.raises(LockOrderError):
            a.acquire()
    # The failed acquire must not leave ``a`` locked.
    assert not a.locked()
    assert not b.locked()


def test_three_lock_cycle_is_detected():
    a, b, c = (OrderedLock(f"t4.{n}") for n in "ABC")
    with a, b:
        pass
    with b, c:
        pass
    with pytest.raises(LockOrderError, match="potential deadlock"):
        with c, a:
            pass


def test_same_name_reentrancy_records_no_self_edge():
    """Two instances sharing a role name: no self-edge, no false cycle."""
    s1, s2 = OrderedLock("t5.S"), OrderedLock("t5.S")
    with s1:
        with s2:
            pass
    assert "t5.S" not in lock_order_graph().get("t5.S", frozenset())


def test_disabled_checking_records_nothing():
    set_lockcheck(False)
    a, b = OrderedLock("t6.A"), OrderedLock("t6.B")
    with a, b:
        pass
    with b, a:  # would cycle if checking were on
        pass
    assert "t6.A" not in lock_order_graph()


def test_env_gate(monkeypatch):
    set_lockcheck(None)  # defer to environment
    monkeypatch.setenv("REPRO_LOCKCHECK", "1")
    assert lockcheck_enabled() is True
    set_lockcheck(None)
    monkeypatch.setenv("REPRO_LOCKCHECK", "0")
    assert lockcheck_enabled() is False


def test_nonblocking_acquire_contract():
    lock = OrderedLock("t7.A")
    assert lock.acquire(blocking=False) is True
    assert lock.locked()
    lock.release()

    holder = OrderedLock("t7.B")
    holder.acquire()
    grabbed = []
    thread = threading.Thread(
        target=lambda: grabbed.append(holder.acquire(blocking=False)))
    thread.start()
    thread.join()
    assert grabbed == [False]
    holder.release()


def test_condition_wait_keeps_bookkeeping_exact():
    """Condition.wait releases/reacquires through the wrapper, so a
    cross-thread notify works and no stale held-state accumulates."""
    cond = threading.Condition(OrderedLock("t8.cond"))
    outer = OrderedLock("t8.outer")
    ready = []

    def waiter():
        with cond:
            while not ready:
                cond.wait(timeout=5.0)

    thread = threading.Thread(target=waiter)
    thread.start()
    with cond:
        ready.append(True)
        cond.notify()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    # After the dance, taking an unrelated lock must not see phantom
    # held locks from the condition.
    with outer:
        pass
    assert "t8.cond" not in lock_order_graph().get("t8.outer", frozenset())


def test_runtime_locks_record_expected_graph(tmp_path):
    """The retrofitted BlockStore/BlockCache/prefetcher hold no two
    project locks at once: a full cached+prefetched run records no
    edges between the runtime lock roles."""
    from repro.localrt.cache import BlockCache
    from repro.localrt.prefetch import ReadAheadPrefetcher
    from repro.localrt.storage import BlockStore

    store = BlockStore.create(
        tmp_path / "blocks", (f"line {i}" for i in range(64)),
        block_size_bytes=64, cache=BlockCache(1 << 16))
    with ReadAheadPrefetcher(store, depth=4) as prefetcher:
        prefetcher.schedule(range(store.num_blocks))
        for index in range(store.num_blocks):
            store.read_block(index)
    runtime_roles = {"BlockStore._stats_lock", "BlockCache._lock",
                     "ReadAheadPrefetcher._cond"}
    for source, targets in lock_order_graph().items():
        if source in runtime_roles:
            assert not (targets & runtime_roles), (
                f"unexpected lock nesting {source} -> {targets}")


# ------------------------------------------------- held-set bookkeeping
def test_held_locks_exact_across_condition_wait():
    """held_locks() must drop the condition's lock *while* wait() has
    released it and show it again after re-acquisition."""
    from repro.analysis.lockgraph import held_locks

    cond = threading.Condition(OrderedLock("t9.cond"))
    during_wait = []
    after_wait = []
    woken = []

    def waiter():
        with cond:
            while not woken:
                cond.wait(timeout=5.0)
            after_wait.append(tuple(held_locks()))

    thread = threading.Thread(target=waiter)
    thread.start()
    with cond:
        # The waiter is (or soon will be) inside wait(); this thread
        # holding the lock proves the waiter released it through the
        # wrapper, so the waiter's held set excludes it right now.
        during_wait.append(tuple(held_locks()))
        woken.append(True)
        cond.notify()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert during_wait == [("t9.cond",)]
    assert after_wait == [("t9.cond",)]
    assert tuple(held_locks()) == ()


def test_same_name_reentrant_acquisition_balances_held_stack():
    """Two instances sharing a role name: the held stack counts both
    and releases unwind one at a time."""
    from repro.analysis.lockgraph import held_locks

    a1, a2 = OrderedLock("t10.A"), OrderedLock("t10.A")
    a1.acquire()
    a2.acquire()
    assert tuple(held_locks()) == ("t10.A", "t10.A")
    a2.release()
    assert tuple(held_locks()) == ("t10.A",)
    a1.release()
    assert tuple(held_locks()) == ()


def test_reset_clears_edges_but_not_held_sets():
    """reset_lock_graph drops recorded order edges only; a lock held
    across the reset is still in the thread's held set (so a test-scoped
    reset cannot corrupt live bookkeeping)."""
    from repro.analysis.lockgraph import held_locks

    outer, inner = OrderedLock("t11.A"), OrderedLock("t11.B")
    with outer:
        with inner:
            pass
        assert "t11.B" in lock_order_graph().get("t11.A", frozenset())
        reset_lock_graph()
        assert lock_order_graph() == {}
        assert tuple(held_locks()) == ("t11.A",)
        # Bookkeeping still works: the same nesting is re-recorded.
        with inner:
            pass
        assert "t11.B" in lock_order_graph().get("t11.A", frozenset())
    assert tuple(held_locks()) == ()


def test_tracking_only_mode_records_no_edges_and_never_raises():
    """The race checker's switch: held sets are maintained, but no order
    edges are drawn and inconsistent orders pass silently."""
    from repro.analysis.lockgraph import held_locks, set_held_tracking

    set_lockcheck(False)
    set_held_tracking(True)
    try:
        a, b = OrderedLock("t12.A"), OrderedLock("t12.B")
        with a:
            with b:
                assert tuple(held_locks()) == ("t12.A", "t12.B")
        with b:
            with a:  # opposite order: LockOrderError if checking were on
                pass
        assert lock_order_graph() == {}
    finally:
        # Leave tracking on when the run's race checker needs it.
        from repro.analysis.racecheck import racecheck_enabled
        set_held_tracking(racecheck_enabled())
        set_lockcheck(True)
