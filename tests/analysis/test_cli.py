"""CLI behaviour: exit codes, output formats, baseline workflow."""

from __future__ import annotations

import io
import json
import subprocess
import sys
import textwrap

from repro.analysis.cli import main

CLEAN = "def fine() -> int:\n    return 1\n"
DIRTY = textwrap.dedent("""\
    import random
    import time

    def stamp():
        return time.time()
    """)


def write(tmp_path, name, content):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), stdout=out)
    return code, out.getvalue()


def test_clean_tree_exits_zero(tmp_path):
    write(tmp_path, "pkg/good.py", CLEAN)
    code, output = run_cli(str(tmp_path))
    assert code == 0
    assert "clean" in output


def test_violations_exit_nonzero_with_file_line(tmp_path):
    path = write(tmp_path, "pkg/bad.py", DIRTY)
    code, output = run_cli(str(tmp_path))
    assert code == 1
    assert f"{path.as_posix()}:1:0: REP002" in output
    assert f"{path.as_posix()}:5:11: REP001" in output


def test_json_format(tmp_path):
    write(tmp_path, "bad.py", "import random\n")
    code, output = run_cli(str(tmp_path), "--format", "json")
    assert code == 1
    document = json.loads(output)
    assert [d["code"] for d in document] == ["REP002"]
    assert document[0]["line"] == 1


def test_select_and_ignore(tmp_path):
    write(tmp_path, "bad.py", DIRTY)
    code, output = run_cli(str(tmp_path), "--select", "REP002")
    assert code == 1 and "REP001" not in output
    code, output = run_cli(str(tmp_path), "--ignore", "REP001,REP002")
    assert code == 0


def test_unknown_code_is_usage_error(tmp_path):
    write(tmp_path, "x.py", CLEAN)
    code, _ = run_cli(str(tmp_path), "--select", "REP999")
    assert code == 2


def test_missing_path_is_usage_error(tmp_path):
    code, _ = run_cli(str(tmp_path / "nope"))
    assert code == 2


def test_no_paths_prints_help(tmp_path):
    code, output = run_cli()
    assert code == 2
    assert "usage" in output.lower()


def test_list_rules():
    code, output = run_cli("--list-rules")
    assert code == 0
    for expected in ("REP001", "REP002", "REP003", "REP004", "REP005"):
        assert expected in output


def test_baseline_roundtrip(tmp_path):
    write(tmp_path, "bad.py", "import random\n")
    baseline = tmp_path / "baseline.json"
    code, output = run_cli(str(tmp_path), "--baseline", str(baseline),
                           "--write-baseline")
    assert code == 0 and "1 entries" in output
    # Grandfathered: now clean.
    code, _ = run_cli(str(tmp_path), "--baseline", str(baseline))
    assert code == 0
    # A fresh violation still fails.
    write(tmp_path, "worse.py", "import time\nt = time.time()\n")
    code, output = run_cli(str(tmp_path), "--baseline", str(baseline))
    assert code == 1
    assert "REP001" in output and "REP002" not in output


def test_corrupt_baseline_is_usage_error(tmp_path):
    write(tmp_path, "x.py", CLEAN)
    baseline = write(tmp_path, "baseline.json", "not json")
    code, _ = run_cli(str(tmp_path), "--baseline", str(baseline))
    assert code == 2


def test_module_entry_point_runs(tmp_path):
    """``python -m repro.analysis`` is the documented interface."""
    write(tmp_path, "bad.py", "import random\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(tmp_path)],
        capture_output=True, text=True)
    assert proc.returncode == 1
    assert "REP002" in proc.stdout


def test_list_rules_includes_guardedby_rules():
    code, output = run_cli("--list-rules")
    assert code == 0
    assert "REP007" in output and "REP008" in output


def test_default_baseline_discovered_from_cwd(tmp_path, monkeypatch):
    """With no --baseline, `analysis-baseline.json` in the CWD applies
    (the committed repo-root workflow)."""
    write(tmp_path, "pkg/bad.py", "import random\n")
    monkeypatch.chdir(tmp_path)
    code, _ = run_cli("pkg", "--baseline", "analysis-baseline.json",
                      "--write-baseline")
    assert code == 0
    code, output = run_cli("pkg")
    assert code == 0
    assert "clean" in output


def test_no_baseline_flag_ignores_discovered_file(tmp_path, monkeypatch):
    write(tmp_path, "pkg/bad.py", "import random\n")
    monkeypatch.chdir(tmp_path)
    code, _ = run_cli("pkg", "--baseline", "analysis-baseline.json",
                      "--write-baseline")
    assert code == 0
    code, output = run_cli("pkg", "--no-baseline")
    assert code == 1
    assert "REP002" in output


def test_explicit_baseline_beats_discovery(tmp_path, monkeypatch):
    """--baseline FILE wins over a discovered analysis-baseline.json."""
    write(tmp_path, "pkg/bad.py", "import random\n")
    write(tmp_path, "analysis-baseline.json",
          json.dumps({"version": 1, "entries": []}))
    monkeypatch.chdir(tmp_path)
    code, _ = run_cli("pkg", "--baseline", "full.json", "--write-baseline")
    assert code == 0
    code, _ = run_cli("pkg", "--baseline", "full.json")
    assert code == 0
    code, _ = run_cli("pkg")  # discovered empty baseline: still dirty
    assert code == 1
