"""Per-rule fixtures: each REP rule fires on the violating form and
stays silent on the clean form."""

from __future__ import annotations

import dataclasses
import textwrap

import pytest

from repro.analysis import READSTATS_FIELDS, RULES_BY_CODE, analyze_source
from repro.localrt.storage import ReadStats


def run_rule(code: str, source: str, path: str = "src/repro/x.py"):
    return analyze_source(textwrap.dedent(source), path,
                          [RULES_BY_CODE[code]])


# ------------------------------------------------------------------- REP001
class TestRep001Wallclock:
    def test_time_call_fires_with_location(self):
        violations = run_rule("REP001", """\
            import time

            def stamp():
                return time.time()
            """, path="src/repro/simengine/sim.py")
        assert [v.code for v in violations] == ["REP001"]
        assert violations[0].line == 4
        assert "time.time" in violations[0].message

    @pytest.mark.parametrize("call", [
        "time.perf_counter()", "time.monotonic()", "time.time_ns()"])
    def test_other_time_reads_fire(self, call):
        violations = run_rule(
            "REP001", f"import time\nx = {call}\n",
            path="src/repro/metrics/m.py")
        assert len(violations) == 1

    def test_from_import_fires_at_import_line(self):
        violations = run_rule("REP001", """\
            from time import perf_counter, sleep
            """, path="src/repro/schedulers/s.py")
        assert len(violations) == 1
        assert violations[0].line == 1
        assert "perf_counter" in violations[0].message
        # sleep is not a wall-clock *read*
        assert "sleep" not in violations[0].message.split("(")[1]

    def test_datetime_now_fires(self):
        violations = run_rule(
            "REP001", "import datetime\nt = datetime.datetime.now()\n")
        assert len(violations) == 1

    def test_event_clock_and_timedelta_are_clean(self):
        violations = run_rule("REP001", """\
            import datetime

            def advance(sim):
                base = datetime.date(2011, 9, 13)
                return sim.now() + datetime.timedelta(days=1)
            """, path="src/repro/simengine/sim.py")
        assert violations == []

    def test_clock_module_is_allowlisted(self):
        violations = run_rule(
            "REP001", "import time\nnow = time.perf_counter()\n",
            path="src/repro/common/clock.py")
        assert violations == []


# ------------------------------------------------------------------- REP002
class TestRep002Randomness:
    def test_stdlib_random_import_fires(self):
        violations = run_rule("REP002", "import random\n")
        assert [v.code for v in violations] == ["REP002"]
        assert violations[0].line == 1

    def test_from_random_import_fires(self):
        assert len(run_rule("REP002", "from random import choice\n")) == 1

    def test_legacy_numpy_global_rng_fires(self):
        violations = run_rule("REP002", """\
            import numpy as np
            np.random.seed(0)
            x = np.random.normal(0, 1)
            """)
        assert len(violations) == 2

    def test_unseeded_default_rng_fires(self):
        violations = run_rule(
            "REP002", "import numpy as np\nrng = np.random.default_rng()\n")
        assert len(violations) == 1
        assert "unseeded" in violations[0].message

    def test_seeded_generator_is_clean(self):
        violations = run_rule("REP002", """\
            from repro.common.rng import make_rng

            def sample(seed):
                rng = make_rng(seed)
                return rng.normal(0.0, 1.0)
            """)
        assert violations == []

    def test_rng_module_is_allowlisted(self):
        violations = run_rule(
            "REP002", "import numpy as np\nr = np.random.default_rng()\n",
            path="src/repro/common/rng.py")
        assert violations == []


# ------------------------------------------------------------------- REP003
class TestRep003CounterWrites:
    def test_stats_field_write_fires(self):
        violations = run_rule("REP003", """\
            def cheat(store):
                store.stats.blocks_read += 5
            """)
        assert [v.code for v in violations] == ["REP003"]
        assert violations[0].line == 2
        assert "blocks_read" in violations[0].message

    def test_assignment_and_report_io_fire(self):
        violations = run_rule("REP003", """\
            def rewrite(report):
                report.io.cache_hits = 0
            """)
        assert len(violations) == 1

    def test_reads_and_other_attrs_are_clean(self):
        violations = run_rule("REP003", """\
            def observe(store):
                before = store.stats.blocks_read
                store.progress = before  # not a ReadStats field
                return store.stats.snapshot()
            """)
        assert violations == []

    def test_storage_and_counters_are_allowlisted(self):
        bad = "def f(self):\n    self.stats.blocks_read += 1\n"
        for path in ("src/repro/localrt/storage.py",
                     "src/repro/localrt/counters.py"):
            assert run_rule("REP003", bad, path=path) == []

    def test_field_set_matches_readstats_dataclass(self):
        """The rule's literal field list must track the dataclass."""
        actual = {f.name for f in dataclasses.fields(ReadStats)}
        assert actual == set(READSTATS_FIELDS)


# ------------------------------------------------------------------- REP004
class TestRep004BlockingUnderLock:
    def test_sleep_under_lock_fires(self):
        violations = run_rule("REP004", """\
            import time

            def hold(self):
                with self._lock:
                    time.sleep(0.1)
            """)
        assert [v.code for v in violations] == ["REP004"]
        assert violations[0].line == 5

    def test_file_io_under_lock_fires(self):
        violations = run_rule("REP004", """\
            def persist(self, path):
                with self._stats_lock:
                    data = path.read_bytes()
                return data
            """)
        assert len(violations) == 1
        assert "read_bytes" in violations[0].message

    def test_join_and_subprocess_fire(self):
        violations = run_rule("REP004", """\
            import subprocess

            def teardown(self):
                with self._lock:
                    self._thread.join()
                    subprocess.run(["sync"])
            """)
        assert len(violations) == 2

    def test_acquire_region_is_checked(self):
        violations = run_rule("REP004", """\
            def drain(self, work_queue):
                with self._lock.acquire():
                    item = work_queue.get()
                return item
            """)
        assert len(violations) == 1
        assert "queue" in violations[0].message

    def test_str_join_and_unlocked_io_are_clean(self):
        violations = run_rule("REP004", """\
            def render(self, path):
                with self._lock:
                    text = ", ".join(self._names)
                path.write_text(text)
            """)
        assert violations == []

    def test_nested_def_under_lock_is_exempt(self):
        violations = run_rule("REP004", """\
            def subscribe(self, path):
                with self._lock:
                    def callback():
                        return path.read_text()
                    self._callbacks.append(callback)
            """)
        assert violations == []

    def test_bare_acquire_release_span_fires(self):
        violations = run_rule("REP004", """\
            import time

            def hold(self):
                self._lock.acquire()
                time.sleep(0.1)
                self._lock.release()
                time.sleep(0.2)
            """)
        assert len(violations) == 1
        assert violations[0].line == 5

    def test_try_finally_release_idiom_fires(self):
        violations = run_rule("REP004", """\
            import time

            def hold(self):
                self._lock.acquire()
                try:
                    time.sleep(0.1)
                finally:
                    self._lock.release()
                time.sleep(0.2)
            """)
        assert len(violations) == 1
        assert violations[0].line == 6

    def test_one_hop_helper_call_fires_at_call_site(self):
        violations = run_rule("REP004", """\
            import time

            class Worker:
                def _slow(self):
                    time.sleep(0.5)

                def run(self):
                    with self._lock:
                        self._slow()
            """)
        assert len(violations) == 1
        assert violations[0].line == 9
        assert "self._slow()" in violations[0].message
        assert "sleep" in violations[0].message

    def test_one_hop_helper_locked_region_is_not_charged(self):
        violations = run_rule("REP004", """\
            import time

            class Worker:
                def _tidy(self):
                    with self._other_lock:
                        pass
                    time.sleep(0)  # outside its own lock: fine to call

                def run(self):
                    with self._lock:
                        self._tidy()
            """)
        # The helper sleeps, so calling it under a lock still fires...
        assert len(violations) == 1
        violations = run_rule("REP004", """\
            import time

            class Worker:
                def _tidy(self):
                    self._names.clear()

                def run(self):
                    with self._lock:
                        self._tidy()
            """)
        # ...but a non-blocking helper is clean.
        assert violations == []

    def test_condition_wait_is_carved_out(self):
        violations = run_rule("REP004", """\
            def await_done(self):
                with self._cond:
                    while not self._done:
                        self._cond.wait(timeout=1.0)
                with self._cond:
                    self._cond.wait_for(lambda: self._done)
            """)
        assert violations == []

    def test_wait_on_non_condition_receiver_still_fires(self):
        violations = run_rule("REP004", """\
            def join_up(self):
                with self._lock:
                    self._thread.wait()
            """)
        assert len(violations) == 1


# ------------------------------------------------------------------- REP005
class TestRep005Annotations:
    def test_unannotated_public_function_fires(self):
        violations = run_rule("REP005", """\
            def launch(task, node):
                return None
            """, path="src/repro/schedulers/fifo.py")
        assert len(violations) == 2  # params + return
        assert violations[0].line == 1
        assert "task" in violations[0].message

    def test_missing_return_only(self):
        violations = run_rule("REP005", """\
            class Runner:
                def run(self, depth: int = 2):
                    return depth
            """, path="src/repro/localrt/runners.py")
        assert len(violations) == 1
        assert "return" in violations[0].message

    def test_fully_annotated_is_clean(self):
        violations = run_rule("REP005", """\
            class Runner:
                def run(self, depth: int = 2) -> int:
                    return depth

                def _helper(self, anything):
                    return anything
            """, path="src/repro/localrt/runners.py")
        assert violations == []

    def test_nested_defs_are_exempt(self):
        violations = run_rule("REP005", """\
            def outer() -> int:
                def inner(x):
                    return x
                return inner(1)
            """, path="src/repro/localrt/engine.py")
        assert violations == []

    def test_out_of_scope_paths_are_ignored(self):
        violations = run_rule(
            "REP005", "def loose(x):\n    return x\n",
            path="src/repro/workloads/text.py")
        assert violations == []


# ------------------------------------------------------------------- REP006
class TestRep006ObsOnly:
    def test_print_in_localrt_fires(self):
        violations = run_rule("REP006", """\
            def debug_dump(report):
                print("blocks:", report.blocks_read)
            """, path="src/repro/localrt/runners.py")
        assert [v.code for v in violations] == ["REP006"]
        assert violations[0].line == 2
        assert "repro.obs" in violations[0].message

    def test_logging_import_in_schedulers_fires(self):
        violations = run_rule(
            "REP006", "import logging\n",
            path="src/repro/schedulers/s3/scheduler.py")
        assert len(violations) == 1
        assert "logging" in violations[0].message

    def test_logging_from_import_fires(self):
        violations = run_rule(
            "REP006", "from logging import getLogger\n",
            path="src/repro/localrt/engine.py")
        assert len(violations) == 1

    def test_logger_emission_fires(self):
        violations = run_rule("REP006", """\
            def advance(logger, n):
                logger.info("pointer now at %d", n)
            """, path="src/repro/schedulers/s3/scanloop.py")
        assert len(violations) == 1
        assert ".info()" in violations[0].message

    def test_tracer_emission_is_clean(self):
        violations = run_rule("REP006", """\
            def advance(tracer, n):
                tracer.event("s3.pointer", pointer=n)
                with tracer.span("s3.iteration"):
                    pass
            """, path="src/repro/schedulers/s3/scheduler.py")
        assert violations == []

    def test_warnings_warn_is_clean(self):
        # DeprecationWarning shims are not telemetry.
        violations = run_rule("REP006", """\
            import warnings

            def shim():
                warnings.warn("deprecated", DeprecationWarning)
            """, path="src/repro/localrt/runners.py")
        assert violations == []

    def test_print_outside_scope_is_clean(self):
        violations = run_rule(
            "REP006", "print('hello')\n",
            path="src/repro/experiments/cli.py")
        assert violations == []

    def test_noqa_suppresses(self):
        violations = run_rule(
            "REP006", "print('x')  # repro: noqa[REP006]\n",
            path="src/repro/localrt/engine.py")
        assert violations == []


# ------------------------------------------------------------------- noqa
class TestSuppression:
    def test_noqa_with_code_suppresses(self):
        violations = run_rule(
            "REP002", "import random  # repro: noqa[REP002]\n")
        assert violations == []

    def test_noqa_with_other_code_does_not_suppress(self):
        violations = run_rule(
            "REP002", "import random  # repro: noqa[REP001]\n")
        assert len(violations) == 1

    def test_blanket_noqa_suppresses(self):
        violations = run_rule("REP002", "import random  # repro: noqa\n")
        assert violations == []

    def test_syntax_error_reports_rep000(self):
        violations = analyze_source("def broken(:\n", "src/x.py",
                                    list(RULES_BY_CODE.values()))
        assert [v.code for v in violations] == ["REP000"]
