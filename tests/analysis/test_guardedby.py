"""REP007/REP008 fixtures: guarded-by inference over lock-aware classes."""

from __future__ import annotations

import textwrap

from repro.analysis import RULES_BY_CODE, analyze_source


def run_rule(code: str, source: str, path: str = "src/repro/x.py"):
    return analyze_source(textwrap.dedent(source), path,
                          [RULES_BY_CODE[code]])


# ------------------------------------------------------------------- REP007
class TestRep007Annotated:
    def test_unlocked_write_fires(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pending = 0  # guarded-by: _lock

                def bump(self):
                    self._pending += 1
            """)
        assert [v.code for v in violations] == ["REP007"]
        assert violations[0].line == 9
        assert "written in bump() without holding self._lock" \
            in violations[0].message

    def test_unlocked_read_fires(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pending = 0  # guarded-by: _lock

                def peek(self):
                    return self._pending
            """)
        assert len(violations) == 1
        assert "read in peek() without holding self._lock" \
            in violations[0].message

    def test_with_lock_access_is_clean(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pending = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._pending += 1
                    return True
            """)
        assert violations == []

    def test_bare_acquire_release_region_is_held(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def locked_then_not(self):
                    self._lock.acquire()
                    self._n += 1
                    self._lock.release()
                    self._n += 1
            """)
        assert len(violations) == 1
        assert violations[0].line == 12

    def test_condition_counts_as_lock_and_wait_keeps_held(self):
        violations = run_rule("REP007", """\
            import threading
            from repro.analysis.lockgraph import OrderedLock

            class Thing:
                def __init__(self):
                    self._cond = threading.Condition(OrderedLock("T.c"))
                    self._closed = False  # guarded-by: _cond

                def wait_closed(self):
                    with self._cond:
                        while not self._closed:
                            self._cond.wait(timeout=1.0)
                        self._closed = False
            """)
        assert violations == []

    def test_helper_called_only_under_lock_is_clean(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def bump_twice(self):
                    with self._lock:
                        self._bump_locked()
                        self._bump_locked()

                def _bump_locked(self):
                    self._n += 1
            """)
        assert violations == []

    def test_helper_chain_propagates_to_fixpoint(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._outer()

                def _outer(self):
                    self._inner()

                def _inner(self):
                    self._n += 1
            """)
        assert violations == []

    def test_helper_with_one_unlocked_call_site_fires(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def sloppy(self):
                    self._bump_locked()

                def _bump_locked(self):
                    self._n += 1
            """)
        # Intersection over call sites is empty, so the helper body is
        # treated as running unlocked and the access fires there.
        assert len(violations) == 1
        assert "_bump_locked()" in violations[0].message

    def test_public_method_assumed_callable_unlocked(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def looks_like_helper(self):
                    self._n += 1

                def caller(self):
                    with self._lock:
                        self.looks_like_helper()
            """)
        # Public name: external callers need not hold the lock.
        assert len(violations) == 1

    def test_init_writes_are_exempt(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock
                    self._n = 1
            """)
        assert violations == []

    def test_unknown_lock_annotation_is_config_error(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _mutex
            """)
        assert len(violations) == 1
        assert "constructs no such lock" in violations[0].message
        assert "_lock" in violations[0].message

    def test_noqa_suppresses(self):
        violations = run_rule("REP007", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def peek(self):
                    return self._n  # repro: noqa[REP007]
            """)
        assert violations == []


# ------------------------------------------------------------------- REP008
class TestRep008Inference:
    def test_mixed_locked_and_unlocked_writes_fire(self):
        violations = run_rule("REP008", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def good(self):
                    with self._lock:
                        self._n += 1

                def bad(self):
                    self._n = 5
            """)
        assert [v.code for v in violations] == ["REP008"]
        assert "written both under a lock and outside any lock" \
            in violations[0].message
        assert "good():10" in violations[0].message
        assert "bad():13" in violations[0].message

    def test_two_disjoint_locks_fire(self):
        violations = run_rule("REP008", """\
            import threading

            class Thing:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._n = 0

                def via_a(self):
                    with self._a:
                        self._n += 1

                def via_b(self):
                    with self._b:
                        self._n += 1
            """)
        assert len(violations) == 1
        assert "distinct locks with no common guard" in violations[0].message

    def test_consistent_single_lock_is_clean(self):
        violations = run_rule("REP008", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def one(self):
                    with self._lock:
                        self._n += 1

                def two(self):
                    with self._lock:
                        self._n = 0
            """)
        assert violations == []

    def test_single_write_site_is_clean(self):
        violations = run_rule("REP008", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def set(self, v):
                    self._n = v
            """)
        assert violations == []

    def test_annotated_attrs_are_rep007s_job(self):
        violations = run_rule("REP008", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def good(self):
                    with self._lock:
                        self._n += 1

                def bad(self):
                    self._n = 5
            """)
        assert violations == []

    def test_lockless_class_is_skipped(self):
        violations = run_rule("REP008", """\
            class Plain:
                def __init__(self):
                    self._n = 0

                def one(self):
                    self._n += 1

                def two(self):
                    self._n = 0
            """)
        assert violations == []

    def test_init_writes_do_not_count_as_sites(self):
        violations = run_rule("REP008", """\
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0
                    self._n = 1

                def set(self):
                    with self._lock:
                        self._n = 2
            """)
        assert violations == []
