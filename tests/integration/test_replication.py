"""Replication > 1: rack-aware placement and its scheduling effects."""

import pytest

from repro.common.config import ClusterConfig, DfsConfig
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.faults import FaultModel, Outage
from repro.mapreduce.job import JobSpec
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.s3 import S3Scheduler


def make_driver(scheduler, replication, small_cluster_config,
                fault_model=None):
    return SimulationDriver(
        scheduler,
        cluster_config=small_cluster_config,
        dfs_config=DfsConfig(block_size_mb=64.0, replication=replication),
        cost_model=CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0),
        fault_model=fault_model)


def test_replicated_blocks_span_racks(small_cluster_config):
    driver = make_driver(FifoScheduler(), 3, small_cluster_config)
    dfs_file = driver.register_file("f", 64.0 * 8)
    for block in dfs_file.blocks:
        assert len(block.locations) == 3
        racks = {driver.cluster.topology.rack_of(n) for n in block.locations}
        assert len(racks) == 2  # HDFS: one replica off-rack


def test_replication_improves_locality_under_contention(small_cluster_config,
                                                        fast_profile):
    """With 2 jobs racing, extra replicas give the assigner more local
    choices — locality with replication 3 >= replication 1."""
    rates = {}
    for replication in (1, 3):
        driver = make_driver(S3Scheduler(), replication, small_cluster_config)
        driver.register_file("f", 64.0 * 24)
        jobs = [JobSpec(job_id=f"j{i}", file_name="f", profile=fast_profile)
                for i in range(2)]
        driver.submit_all(jobs, [0.0, 1.0])
        result = driver.run()
        rates[replication] = result.locality.locality_rate
    assert rates[3] >= rates[1]


def test_outage_with_replication_keeps_locality(small_cluster_config,
                                                fast_profile):
    """A dead tasktracker's blocks stay node-local elsewhere when
    replicated."""
    faults = FaultModel(outages=(Outage("node_000", 0.0, 500.0),))
    driver = make_driver(FifoScheduler(), 2, small_cluster_config,
                         fault_model=faults)
    driver.register_file("f", 64.0 * 16)
    driver.submit_all([JobSpec(job_id="j", file_name="f",
                               profile=fast_profile)], [0.0])
    result = driver.run()
    assert result.all_complete
    # With a second replica nearly every map stays node-local; both of the
    # dead node's blocks replicate to the same partner (deterministic
    # placement), whose single slot forces at most one remote read.
    assert result.locality.locality_rate >= 0.9


def test_replication_exceeding_cluster_rejected():
    from repro.common.errors import DfsError
    config = ClusterConfig(num_nodes=2, rack_sizes=(2,))
    driver = SimulationDriver(FifoScheduler(), cluster_config=config,
                              dfs_config=DfsConfig(replication=2))
    with pytest.raises(DfsError):
        SimulationDriver(
            FifoScheduler(), cluster_config=config,
            dfs_config=DfsConfig(replication=5)).register_file("f", 64.0)
    driver.register_file("ok", 64.0)  # 2 replicas on 2 nodes is fine
