"""Integration: the simulator reproduces Section III's worked examples."""

import pytest

from repro.experiments.worked_examples import run


@pytest.fixture(scope="module")
def result():
    return run(offsets=(0.2, 0.8))


@pytest.mark.parametrize("case,scheme", [
    ("offset 20%", "FIFO"), ("offset 20%", "MRShare"), ("offset 20%", "S3"),
    ("offset 80%", "FIFO"), ("offset 80%", "MRShare"), ("offset 80%", "S3"),
])
def test_simulation_matches_analytic(result, case, scheme):
    """Simulated TET/ART within 4% of the closed form (wave granularity)."""
    tet_analytic, art_analytic, tet_sim, art_sim = result.extra["rows"][case][scheme]
    assert tet_sim == pytest.approx(tet_analytic, rel=0.04)
    assert art_sim == pytest.approx(art_analytic, rel=0.04)


def test_relative_orderings_match_paper(result):
    """Example 1: TET FIFO > MRShare ~ S3; ART FIFO > MRShare > S3."""
    rows = result.extra["rows"]["offset 20%"]
    assert rows["FIFO"][2] > rows["MRShare"][2]
    assert rows["FIFO"][3] > rows["MRShare"][3] > rows["S3"][3]


def test_sparse_case_flips_fifo_mrshare_art(result):
    """Example 2: with a late second job, FIFO's ART beats MRShare's."""
    rows = result.extra["rows"]["offset 80%"]
    assert rows["FIFO"][3] < rows["MRShare"][3]
    assert rows["S3"][3] < rows["FIFO"][3]
