"""Integration: the paper's Figure 4 orderings on the full-size geometry.

These are the headline reproduction checks — each panel's *shape* (who
wins, in what order, by roughly what factor).  EXPERIMENTS.md records the
exact measured numbers next to the paper's.
"""

import pytest

from repro.experiments.fig4 import run_panel


@pytest.fixture(scope="module")
def panels():
    return {p: run_panel(p) for p in ("4a", "4b", "4c", "4d", "4e", "4f")}


# ------------------------------------------------------------------- 4(a)
def test_4a_s3_best_on_both_metrics(panels):
    result = panels["4a"]
    for other in ("FIFO", "MRS1", "MRS2", "MRS3"):
        tet_ratio, art_ratio = result.ratio(other)
        assert tet_ratio >= 1.0, f"{other} beat S3 on TET"
        assert art_ratio > 1.0, f"{other} beat S3 on ART"


def test_4a_fifo_factors(panels):
    """Paper: FIFO 2.2x TET / 2.5x ART; we land in the 2-3.6x band."""
    tet_ratio, art_ratio = panels["4a"].ratio("FIFO")
    assert 2.0 <= tet_ratio <= 3.6
    assert 2.0 <= art_ratio <= 3.8


def test_4a_mrshare_tet_band(panels):
    """Paper: MRShare 1.03-1.32x TET."""
    for variant in ("MRS1", "MRS2", "MRS3"):
        tet_ratio, _ = panels["4a"].ratio(variant)
        assert 1.0 <= tet_ratio <= 1.4


def test_4a_mrs1_worst_mrshare_art(panels):
    """Paper: single-batching inflates early jobs' waiting time most."""
    result = panels["4a"]
    assert result.ratio("MRS1")[1] > result.ratio("MRS2")[1]
    assert result.ratio("MRS1")[1] > result.ratio("MRS3")[1]


def test_4a_mrs3_best_mrshare_art(panels):
    """Paper: MRS3 gives the best ART among the MRShare variants (~1.26x)."""
    result = panels["4a"]
    art = result.ratio("MRS3")[1]
    assert art <= result.ratio("MRS2")[1]
    assert 1.1 <= art <= 1.5


# ------------------------------------------------------------------- 4(b)
def test_4b_mrs1_beats_s3_dense(panels):
    """Paper: under dense arrivals MRS1 is best, 'even better than S3'."""
    result = panels["4b"]
    tet_ratio, art_ratio = result.ratio("MRS1")
    assert tet_ratio < 1.0
    assert art_ratio < 1.0


def test_4b_mrs3_much_worse_dense(panels):
    """Paper: MRS3 extends TET/ART significantly (batch queuing)."""
    tet_ratio, art_ratio = panels["4b"].ratio("MRS3")
    assert tet_ratio > 1.8
    assert art_ratio > 1.3


def test_4b_fifo_absolute_tet_unchanged(panels):
    """Paper: FIFO's absolute TET 'does not change much' dense vs sparse
    (all ten jobs queue either way)."""
    sparse_tet = panels["4a"].metric("FIFO").tet
    dense_tet = panels["4b"].metric("FIFO").tet
    assert dense_tet == pytest.approx(sparse_tet, rel=0.05)


# ------------------------------------------------------------------- 4(c)
def test_4c_heavy_extends_s3_tet(panels):
    """Paper: S3's TET grows ~40% under the heavy workload (we see ~30%)."""
    normal = panels["4a"].metric("S3").tet
    heavy = panels["4c"].metric("S3").tet
    assert 1.2 <= heavy / normal <= 1.55


def test_4c_mrshare_art_still_poor(panels):
    for variant in ("MRS1", "MRS2", "MRS3"):
        assert panels["4c"].ratio(variant)[1] > 1.25


def test_4c_mrs3_extends_tet(panels):
    """Paper: MRS3 extends TET ~40% over S3 in the heavy workload."""
    assert 1.2 <= panels["4c"].ratio("MRS3")[0] <= 1.6


# ------------------------------------------------------------------- 4(d)
def test_4d_128mb_fastest_absolute(panels):
    """Paper: 128MB blocks give the fastest actual processing time."""
    assert panels["4d"].metric("S3").tet < panels["4a"].metric("S3").tet
    assert panels["4d"].metric("S3").tet < panels["4e"].metric("S3").tet
    assert panels["4d"].metric("FIFO").tet < panels["4a"].metric("FIFO").tet


def test_4d_s3_still_wins_art(panels):
    for other in ("FIFO", "MRS1", "MRS2", "MRS3"):
        assert panels["4d"].ratio(other)[1] > 1.2


def test_4d_mrshare_beats_neither_metric(panels):
    """Paper: 'MRShare approaches ... cannot beat S3 in either TET or ART'."""
    for variant in ("MRS1", "MRS2", "MRS3"):
        tet_ratio, art_ratio = panels["4d"].ratio(variant)
        assert tet_ratio >= 1.0
        assert art_ratio > 1.0


# ------------------------------------------------------------------- 4(e)
def test_4e_32mb_slowest_for_everyone(panels):
    """Paper: small blocks inflate per-task overhead for all schemes."""
    for scheduler in ("FIFO", "S3"):
        assert (panels["4e"].metric(scheduler).tet
                > panels["4a"].metric(scheduler).tet)
        assert (panels["4e"].metric(scheduler).tet
                > panels["4d"].metric(scheduler).tet)


def test_4e_s3_gain_still_holds(panels):
    """Paper: 'the performance gain in S3 still holds' at 32MB."""
    tet_ratio, art_ratio = panels["4e"].ratio("FIFO")
    assert tet_ratio > 2.5
    assert art_ratio > 2.5
    for variant in ("MRS2", "MRS3"):
        assert panels["4e"].ratio(variant)[0] > 1.0
        assert panels["4e"].ratio(variant)[1] > 1.1


# ------------------------------------------------------------------- 4(f)
def test_4f_fifo_much_worse_selection(panels):
    """Paper: long selection jobs make FIFO blocking dramatic."""
    tet_ratio, art_ratio = panels["4f"].ratio("FIFO")
    assert tet_ratio > 3.0
    assert art_ratio > 2.5


def test_4f_s3_beats_mrshare_both_metrics(panels):
    """Paper: 'S3 outperforms MRShare in both TET and ART'."""
    for variant in ("MRS1", "MRS2", "MRS3"):
        tet_ratio, art_ratio = panels["4f"].ratio(variant)
        assert tet_ratio > 1.0
        assert art_ratio > 1.1
