"""Cross-scheduler invariants on randomized-but-seeded workloads.

Regardless of policy, every scheduler must complete every job, never
oversubscribe slots (enforced by Node), and cover every block of every
job's input.  These are run on several arrival patterns and cluster
geometries.
"""

import pytest

from repro.common.config import ClusterConfig, DfsConfig
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import normal_wordcount
from repro.metrics.measures import compute_metrics
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.mrshare import MRShareScheduler
from repro.schedulers.s3 import S3Config, S3Scheduler
from repro.workloads.arrivals import poisson

GEOMETRIES = [
    # (nodes, racks, blocks)
    (4, (4,), 10),
    (8, (4, 4), 24),
    (12, (4, 4, 4), 50),
]


def run_one(scheduler, num_nodes, racks, blocks, arrivals):
    driver = SimulationDriver(
        scheduler,
        cluster_config=ClusterConfig(num_nodes=num_nodes, rack_sizes=racks),
        dfs_config=DfsConfig(block_size_mb=64.0),
        cost_model=CostModel(job_submit_overhead_s=1.0, subjob_overhead_s=0.2))
    driver.register_file("f", 64.0 * blocks)
    profile = normal_wordcount().with_(num_reduce_tasks=4, reduce_total_s=2.0)
    jobs = [JobSpec(job_id=f"j{i}", file_name="f", profile=profile)
            for i in range(len(arrivals))]
    driver.submit_all(jobs, arrivals)
    return driver.run()


def all_schedulers(n):
    return [FifoScheduler(), MRShareScheduler.single_batch(n), S3Scheduler(),
            S3Scheduler(S3Config(blocks_per_segment=3))]


@pytest.mark.parametrize("geometry", GEOMETRIES)
@pytest.mark.parametrize("seed", [1, 2])
def test_all_jobs_complete_under_every_policy(geometry, seed):
    num_nodes, racks, blocks = geometry
    arrivals = sorted(poisson(5, 20.0, seed=seed))
    for scheduler in all_schedulers(5):
        result = run_one(scheduler, num_nodes, racks, blocks, arrivals)
        assert result.all_complete, scheduler.name
        metrics = compute_metrics(scheduler.name, result.timelines)
        assert metrics.tet > 0 and metrics.art > 0


@pytest.mark.parametrize("seed", [3, 4])
def test_s3_block_coverage_exact(seed):
    """Each S3 job's map tasks cover every block exactly once."""
    arrivals = sorted(poisson(4, 15.0, seed=seed))
    result = run_one(S3Scheduler(S3Config(blocks_per_segment=5)),
                     8, (4, 4), 30, arrivals)
    # Reconstructing per-job coverage from the scheduler-visible trace
    # is indirect; instead assert completion + map-task count bounds:
    total_map_tasks = len(result.trace.filter(kind="task.start.map"))
    # Shared scanning: between 30 (fully shared) and 120 (no sharing).
    assert 30 <= total_map_tasks <= 120
    assert result.all_complete


def test_s3_never_slower_than_fifo_on_shared_workloads():
    """With overlapping shared-input jobs, S3's TET and ART beat FIFO's."""
    arrivals = [0.0, 10.0, 20.0, 30.0]
    fifo = run_one(FifoScheduler(), 8, (4, 4), 32, arrivals)
    s3 = run_one(S3Scheduler(), 8, (4, 4), 32, arrivals)
    fifo_metrics = compute_metrics("FIFO", fifo.timelines)
    s3_metrics = compute_metrics("S3", s3.timelines)
    assert s3_metrics.tet < fifo_metrics.tet
    assert s3_metrics.art < fifo_metrics.art


def test_single_job_equivalence_across_policies():
    """With one job there is nothing to share: all policies take ~equal time.

    S3 may be modestly *faster* even solo because its per-segment reduces
    pipeline with later map waves (FIFO/MRShare reduce only after all maps
    — Hadoop's shuffle slow-start recovers some of this in practice), so
    we allow a 15% spread rather than demanding exact equality.
    """
    results = {}
    for scheduler in (FifoScheduler(), MRShareScheduler.single_batch(1),
                      S3Scheduler()):
        result = run_one(scheduler, 8, (4, 4), 24, [0.0])
        results[scheduler.name] = compute_metrics(
            scheduler.name, result.timelines).tet
    spread = max(results.values()) - min(results.values())
    assert spread <= 0.15 * min(results.values())
