"""Deeper S3 behaviours: dynamic sub-job adjustment, multi-file fairness,
and analytics consistency."""

import pytest

from repro.common.config import ClusterConfig
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.job import JobSpec
from repro.metrics.jobstats import job_phase_stats
from repro.schedulers.mrshare import MRShareScheduler
from repro.schedulers.s3 import S3Config, S3Scheduler


def make_driver(small_cluster_config, small_dfs_config, *, overhead=2.0,
                config=None):
    return SimulationDriver(
        S3Scheduler(config),
        cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0,
                             subjob_overhead_s=overhead))


def test_arrival_during_armed_window_included(small_cluster_config,
                                              small_dfs_config, fast_profile):
    """Dynamic sub-job adjustment (Section IV-D.2): a job arriving while
    the next merged sub-job is armed-but-not-launched joins it."""
    driver = make_driver(small_cluster_config, small_dfs_config, overhead=2.0)
    driver.register_file("f", 64.0 * 16)
    jobs = [JobSpec(job_id=f"j{i}", file_name="f", profile=fast_profile)
            for i in range(2)]
    # j0 at t=0 arms the first iteration for t=2.0; j1 lands inside the
    # overhead window at t=1.0.
    driver.submit_all(jobs, [0.0, 1.0])
    result = driver.run()
    first = result.trace.filter(kind="s3.subjob.launch")[0]
    assert first.time == pytest.approx(2.0)
    assert first.detail["jobs"] == 2  # j1 was folded into the armed batch
    # Fully shared from the very first segment.
    stats = job_phase_stats(result)
    assert stats["j1"].sharing_fraction == 1.0


def test_arrival_after_launch_waits_for_next_boundary(small_cluster_config,
                                                      small_dfs_config,
                                                      fast_profile):
    driver = make_driver(small_cluster_config, small_dfs_config, overhead=0.5)
    driver.register_file("f", 64.0 * 16)
    jobs = [JobSpec(job_id=f"j{i}", file_name="f", profile=fast_profile)
            for i in range(2)]
    # j1 arrives while iteration 1 is running (launched at 0.5).
    driver.submit_all(jobs, [0.0, 1.0])
    result = driver.run()
    launches = result.trace.filter(kind="s3.subjob.launch")
    assert launches[0].detail["jobs"] == 1
    assert launches[1].detail["jobs"] == 2


def test_multi_file_round_robin_fairness(small_cluster_config,
                                         small_dfs_config, fast_profile):
    """Two files with one job each: iterations alternate between files."""
    driver = make_driver(small_cluster_config, small_dfs_config, overhead=0.0)
    driver.register_file("f1", 64.0 * 16)
    driver.register_file("f2", 64.0 * 16)
    jobs = [JobSpec(job_id="a", file_name="f1", profile=fast_profile),
            JobSpec(job_id="b", file_name="f2", profile=fast_profile)]
    driver.submit_all(jobs, [0.0, 0.0])
    result = driver.run()
    order = [r.subject.split(":")[0]
             for r in result.trace.filter(kind="s3.subjob.launch")]
    # Strict alternation: f1, f2, f1, f2 (2 iterations per file).
    assert order == ["f1", "f2", "f1", "f2"]
    # Neither job starves: completions within one iteration of each other.
    a_done = result.timeline("a").completed
    b_done = result.timeline("b").completed
    assert abs(a_done - b_done) < 0.5 * max(a_done, b_done)


def test_mrshare_jobstats_show_full_sharing(small_cluster_config,
                                            small_dfs_config, fast_profile):
    driver = SimulationDriver(
        MRShareScheduler.single_batch(3),
        cluster_config=small_cluster_config, dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0))
    driver.register_file("f", 64.0 * 16)
    jobs = [JobSpec(job_id=f"j{i}", file_name="f", profile=fast_profile)
            for i in range(3)]
    driver.submit_all(jobs, [0.0, 5.0, 10.0])
    result = driver.run()
    stats = job_phase_stats(result)
    assert all(s.sharing_fraction == 1.0 for s in stats.values())
    # The first job's waiting time includes the batch-forming delay.
    assert stats["j0"].waiting_time >= 10.0


def test_adaptive_segments_shrink_to_available_slots(small_dfs_config,
                                                     fast_profile):
    """With slot checking excluding slow nodes, adaptive iterations use
    fewer blocks per launch."""
    speeds = [1.0] * 6 + [0.15, 0.15]
    cluster = ClusterConfig(num_nodes=8, rack_sizes=(4, 4),
                            node_speeds=speeds)
    config = S3Config(slot_check_enabled=True, adaptive_segments=True,
                      slot_check_interval_s=2.0)
    driver = SimulationDriver(
        S3Scheduler(config), cluster_config=cluster,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.2))
    driver.register_file("f", 64.0 * 64)
    driver.submit_all([JobSpec(job_id="a", file_name="f",
                               profile=fast_profile)], [0.0])
    result = driver.run()
    sizes = {r.detail["blocks"]
             for r in result.trace.filter(kind="s3.subjob.launch")}
    assert 8 in sizes           # full-cluster iterations before detection
    assert any(s < 8 for s in sizes)  # shrunk after exclusions kicked in
