"""Cancellation/detach semantics of ScanLoop, S3JobState and the JQM.

These back the scheduler-service's cancel path and the state audit: a
job that never launches (admitted-then-cancelled, or still waiting when
the service drains) must not strand ``loop.waiting`` entries or leave
``has_work()`` permanently true.
"""

import pytest

from repro.common.config import DfsConfig
from repro.common.errors import SchedulingError
from repro.dfs.namenode import NameNode
from repro.dfs.placement import RoundRobinPlacement
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import normal_wordcount
from repro.schedulers.s3.jobqueue import JobQueueManager
from repro.schedulers.s3.scanloop import ScanLoop


def make_namenode():
    return NameNode(DfsConfig(block_size_mb=64.0),
                    RoundRobinPlacement(["n0", "n1", "n2", "n3"]))


def make_loop(num_blocks=12, seg=4):
    namenode = make_namenode()
    dfs_file = namenode.create_file("f", 64.0 * num_blocks)
    return ScanLoop(dfs_file, seg)


def spec(job_id, priority=0):
    return JobSpec(job_id=job_id, file_name="f",
                   profile=normal_wordcount(), priority=priority)


def test_cancel_waiting_job_leaves_no_state():
    loop = make_loop()
    loop.add_job(spec("a"), 0.0)
    state = loop.cancel("a")
    assert state is not None and state.cancelled
    assert loop.waiting == [] and loop.active == []
    assert not loop.has_work()
    assert loop.build_iteration(4) is None


def test_cancel_active_job_mid_scan():
    loop = make_loop(num_blocks=12, seg=4)
    loop.add_job(spec("a"), 0.0)
    loop.add_job(spec("b"), 0.0)
    loop.build_iteration(4)  # both admitted, 4 blocks covered
    state = loop.cancel("a")
    assert state is not None and state.covered == 4
    assert [j.job_id for j in loop.active] == ["b"]
    # The survivor still completes its full cycle.
    covered = 4
    while loop.has_work():
        iteration = loop.build_iteration(4)
        covered += len(iteration.chunk)
        assert iteration.participants == ("b",)
    assert covered == 12
    assert not loop.has_work()


def test_cancel_unknown_or_finished_returns_none():
    loop = make_loop(num_blocks=4, seg=4)
    loop.add_job(spec("a"), 0.0)
    assert loop.cancel("ghost") is None
    iteration = loop.build_iteration(4)
    assert iteration.finishing_jobs == ("a",)
    # Scan complete: the job has left the loop; cancel is a no-op.
    assert loop.cancel("a") is None


def test_cancelled_state_is_terminal():
    loop = make_loop()
    state = loop.add_job(spec("a"), 0.0)
    loop.cancel("a")
    with pytest.raises(SchedulingError, match="cancelled"):
        state.admit(0)
    loop2 = make_loop()
    active = loop2.add_job(spec("b"), 0.0)
    loop2.build_iteration(4)
    loop2.cancel("b")
    with pytest.raises(SchedulingError, match="cancelled"):
        active.advance(1)


def test_cancel_clears_last_admitted():
    loop = make_loop()
    loop.add_job(spec("a"), 0.0)
    loop.add_job(spec("b"), 1.0)
    loop.build_iteration(4)
    assert set(loop.last_admitted) == {"a", "b"}
    loop.cancel("a")
    assert loop.last_admitted == ("b",)


def test_duplicate_live_job_id_rejected():
    loop = make_loop()
    loop.add_job(spec("a"), 0.0)
    with pytest.raises(SchedulingError, match="unique"):
        loop.add_job(spec("a"), 1.0)
    # After the first copy is gone the id is reusable.
    loop.cancel("a")
    loop.add_job(spec("a"), 2.0)


def test_capped_waiting_job_cancelled_before_admission():
    """Admission-cap interaction: reject-at-drain leaves nothing behind."""
    loop = make_loop(num_blocks=8, seg=4)
    loop.add_job(spec("a"), 0.0)
    loop.add_job(spec("b"), 1.0)
    loop.build_iteration(4, max_jobs=1)
    assert [j.job_id for j in loop.waiting] == ["b"]
    assert loop.cancel("b") is not None
    assert loop.waiting == []
    # Drain the survivor; has_work must go false (no stranded entries).
    while loop.has_work():
        loop.build_iteration(4, max_jobs=1)
    assert not loop.has_work()


def test_jobqueue_routes_find_and_cancel():
    namenode = make_namenode()
    namenode.create_file("f", 64.0 * 8)
    namenode.create_file("g", 64.0 * 8)
    jqm = JobQueueManager(namenode, blocks_per_segment=4)
    jqm.admit(spec("a"), 0.0)
    jqm.admit(JobSpec(job_id="b", file_name="g",
                      profile=normal_wordcount()), 0.0)
    assert jqm.find("b").job_id == "b"
    assert jqm.find("ghost") is None
    assert jqm.cancel("ghost") is None
    assert jqm.cancel("b") is not None
    assert jqm.find("b") is None
    assert jqm.pending_jobs() == 1
    jqm.cancel("a")
    assert not jqm.has_work()
    assert jqm.next_loop_with_work() is None
