"""Capacity / Fair scheduler tests (partial-utilisation baselines)."""

import pytest

from repro.common.errors import SchedulingError
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.job import JobSpec
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.pooled import (
    CapacityScheduler,
    FairScheduler,
    pool_of,
    tag_pool,
)


def run(scheduler, small_cluster_config, small_dfs_config, jobs, arrivals,
        blocks=16):
    driver = SimulationDriver(
        scheduler, cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0))
    driver.register_file("f", 64.0 * blocks)
    driver.submit_all(jobs, arrivals)
    return driver.run()


def pooled_jobs(fast_profile, pools):
    return [JobSpec(job_id=f"j{i}", file_name="f", profile=fast_profile,
                    tag=tag_pool(pool))
            for i, pool in enumerate(pools)]


# ------------------------------------------------------------- pool tagging
def test_pool_of_parses_tag(fast_profile):
    job = JobSpec(job_id="j", file_name="f", profile=fast_profile,
                  tag=tag_pool("analytics", "wordcount[^th.*]"))
    assert pool_of(job) == "analytics"


def test_pool_of_defaults(fast_profile):
    job = JobSpec(job_id="j", file_name="f", profile=fast_profile)
    assert pool_of(job) == "default"


def test_tag_pool_validation():
    with pytest.raises(SchedulingError):
        tag_pool("")
    with pytest.raises(SchedulingError):
        tag_pool("two words")


# --------------------------------------------------------------- validation
def test_capacity_share_validation():
    with pytest.raises(SchedulingError):
        CapacityScheduler({})
    with pytest.raises(SchedulingError):
        CapacityScheduler({"a": 0.0})
    with pytest.raises(SchedulingError):
        CapacityScheduler({"a": 0.7, "b": 0.7})


def test_capacity_rejects_undeclared_queue(small_cluster_config,
                                           small_dfs_config, fast_profile):
    scheduler = CapacityScheduler({"a": 1.0})
    jobs = pooled_jobs(fast_profile, ["ghost"])
    with pytest.raises(SchedulingError, match="undeclared"):
        run(scheduler, small_cluster_config, small_dfs_config, jobs, [0.0])


# ------------------------------------------------------------- concurrency
def test_fair_runs_pools_concurrently(small_cluster_config, small_dfs_config,
                                      fast_profile):
    """Two pools with simultaneous jobs both make progress immediately —
    unlike FIFO where the second job waits for the first's maps."""
    jobs = pooled_jobs(fast_profile, ["a", "b"])
    result = run(FairScheduler(), small_cluster_config, small_dfs_config,
                 jobs, [0.0, 0.0], blocks=32)
    assert result.timeline("j0").first_launch == 0.0
    assert result.timeline("j1").first_launch == 0.0

    fifo_jobs = pooled_jobs(fast_profile, ["a", "b"])
    fifo = run(FifoScheduler(), small_cluster_config, small_dfs_config,
               fifo_jobs, [0.0, 0.0], blocks=32)
    assert fifo.timeline("j1").first_launch > 0.0


def test_fair_splits_slots_evenly(small_cluster_config, small_dfs_config,
                                  fast_profile):
    jobs = pooled_jobs(fast_profile, ["a", "b"])
    result = run(FairScheduler(), small_cluster_config, small_dfs_config,
                 jobs, [0.0, 0.0], blocks=32)
    # First wave (launches at t=0): 8 slots split 4/4.
    first_wave = [r for r in result.trace.filter(kind="task.start.map")
                  if r.time == 0.0]
    assert len(first_wave) == 8
    by_job = {}
    for record in first_wave:
        key = record.subject.split(":")[1]  # pool name
        by_job[key] = by_job.get(key, 0) + 1
    assert by_job == {"a": 4, "b": 4}


def test_capacity_respects_guarantees(small_cluster_config, small_dfs_config,
                                      fast_profile):
    """A 75/25 split gives queue 'big' three times queue 'small's slots."""
    scheduler = CapacityScheduler({"big": 0.75, "small": 0.25})
    jobs = pooled_jobs(fast_profile, ["big", "small"])
    result = run(scheduler, small_cluster_config, small_dfs_config, jobs,
                 [0.0, 0.0], blocks=64)
    first_wave = [r for r in result.trace.filter(kind="task.start.map")
                  if r.time == 0.0]
    by_pool = {}
    for record in first_wave:
        pool = record.subject.split(":")[1]
        by_pool[pool] = by_pool.get(pool, 0) + 1
    assert by_pool == {"big": 6, "small": 2}


def test_capacity_excess_flows_to_demanding_queue(small_cluster_config,
                                                  small_dfs_config,
                                                  fast_profile):
    """With only one queue active it takes the whole cluster (elasticity)."""
    scheduler = CapacityScheduler({"a": 0.5, "b": 0.5})
    jobs = pooled_jobs(fast_profile, ["a"])
    result = run(scheduler, small_cluster_config, small_dfs_config, jobs,
                 [0.0], blocks=16)
    first_wave = [r for r in result.trace.filter(kind="task.start.map")
                  if r.time == 0.0]
    assert len(first_wave) == 8  # all slots, not 4


def test_fair_improves_art_but_not_tet_vs_fifo(small_cluster_config,
                                               small_dfs_config,
                                               fast_profile):
    """The paper's Section II.B critique, measured: concurrency helps
    response time a little but there is still no scan sharing."""
    from repro.metrics.measures import compute_metrics
    arrivals = [0.0, 0.0, 0.0, 0.0]
    fair = run(FairScheduler(), small_cluster_config, small_dfs_config,
               pooled_jobs(fast_profile, ["a", "b", "c", "d"]),
               arrivals, blocks=32)
    fifo = run(FifoScheduler(), small_cluster_config, small_dfs_config,
               pooled_jobs(fast_profile, ["a", "b", "c", "d"]),
               arrivals, blocks=32)
    fair_metrics = compute_metrics("Fair", fair.timelines)
    fifo_metrics = compute_metrics("FIFO", fifo.timelines)
    # No sharing: total work identical, so TET within a few percent.
    assert fair_metrics.tet == pytest.approx(fifo_metrics.tet, rel=0.1)


def test_jobs_complete_under_faults(small_cluster_config, small_dfs_config,
                                    fast_profile):
    from repro.mapreduce.faults import FaultModel
    driver = SimulationDriver(
        FairScheduler(), cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0),
        fault_model=FaultModel(task_failure_prob=0.1, max_attempts=20, seed=9))
    driver.register_file("f", 64.0 * 24)
    driver.submit_all(pooled_jobs(fast_profile, ["a", "b"]), [0.0, 1.0])
    result = driver.run()
    assert result.all_complete
