"""ScanLoop (circular merged sub-job construction) tests."""

import pytest

from repro.common.config import DfsConfig
from repro.common.errors import SchedulingError
from repro.dfs.namenode import NameNode
from repro.dfs.placement import RoundRobinPlacement
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import heavy_wordcount, normal_wordcount
from repro.schedulers.s3.scanloop import ScanLoop


def make_loop(num_blocks=12, seg=4):
    namenode = NameNode(DfsConfig(block_size_mb=64.0),
                        RoundRobinPlacement(["n0", "n1", "n2", "n3"]))
    dfs_file = namenode.create_file("f", 64.0 * num_blocks)
    return ScanLoop(dfs_file, seg)


def spec(job_id, priority=0, profile=None):
    return JobSpec(job_id=job_id, file_name="f",
                   profile=profile or normal_wordcount(), priority=priority)


def test_empty_loop_builds_nothing():
    loop = make_loop()
    assert loop.build_iteration(4) is None
    assert not loop.has_work()


def test_single_job_full_cycle():
    loop = make_loop(num_blocks=12, seg=4)
    loop.add_job(spec("a"), 0.0)
    chunks = []
    finishing = []
    while True:
        iteration = loop.build_iteration(4)
        if iteration is None:
            break
        chunks.append(iteration.chunk)
        finishing.extend(iteration.finishing_jobs)
    assert chunks == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11)]
    assert finishing == ["a"]
    assert not loop.has_work()


def test_job_admitted_mid_cycle_wraps():
    loop = make_loop(num_blocks=8, seg=4)
    loop.add_job(spec("a"), 0.0)
    loop.build_iteration(4)                 # a covers 0-3
    loop.add_job(spec("b"), 1.0)
    it2 = loop.build_iteration(4)           # a covers 4-7 (done), b covers 4-7
    assert it2.participants == ("a", "b")
    assert it2.finishing_jobs == ("a",)
    it3 = loop.build_iteration(4)           # b wraps: 0-3 (done)
    assert it3.participants == ("b",)
    assert it3.finishing_jobs == ("b",)
    assert it3.chunk == (0, 1, 2, 3)
    assert loop.build_iteration(4) is None


def test_per_block_batches_in_final_partial_chunk():
    loop = make_loop(num_blocks=8, seg=4)
    loop.add_job(spec("a"), 0.0)
    loop.build_iteration(2)                 # a: 0-1
    loop.add_job(spec("b"), 1.0)
    loop.build_iteration(2)                 # a: 2-3, b: 2-3
    loop.build_iteration(2)                 # 4-5
    loop.build_iteration(2)                 # 6-7, a done
    it = loop.build_iteration(4)            # b needs 0-1 only
    assert it.chunk == (0, 1)
    assert it.participants == ("b",)


def test_mixed_remaining_prefix_rule():
    """A nearly-done job participates only in the chunk's prefix."""
    loop = make_loop(num_blocks=8, seg=4)
    loop.add_job(spec("a"), 0.0)
    loop.build_iteration(3)                 # a: 0-2, pointer=3
    loop.add_job(spec("b"), 1.0)
    # a remaining 5, b remaining 8 -> chunk capped at file end (5 blocks left)
    it = loop.build_iteration(8)
    assert it.chunk == (3, 4, 5, 6, 7)
    assert it.batch_size_for(3) == 2
    assert it.batch_size_for(7) == 2
    assert it.finishing_jobs == ("a",)


def test_chunk_never_wraps_file_end():
    loop = make_loop(num_blocks=10, seg=4)
    loop.add_job(spec("a"), 0.0)
    loop.build_iteration(4)                 # 0-3
    loop.build_iteration(4)                 # 4-7
    it = loop.build_iteration(4)            # 8-9 (ragged, no wrap)
    assert it.chunk == (8, 9)


def test_admission_cap_defers_new_jobs():
    loop = make_loop(num_blocks=8, seg=4)
    for name in ("a", "b", "c"):
        loop.add_job(spec(name), 0.0)
    it = loop.build_iteration(4, max_jobs=2)
    assert it.batch_size == 2
    assert len(loop.waiting) == 1


def test_admission_cap_prefers_priority():
    loop = make_loop(num_blocks=8, seg=4)
    loop.add_job(spec("low", priority=0), 0.0)
    loop.add_job(spec("high", priority=5), 1.0)
    it = loop.build_iteration(4, max_jobs=1)
    assert it.participants == ("high",)
    assert loop.waiting[0].job_id == "low"


def test_file_fraction():
    loop = make_loop(num_blocks=8, seg=4)
    loop.add_job(spec("a"), 0.0)
    it = loop.build_iteration(4)
    assert it.file_fraction == pytest.approx(0.5)


def test_iteration_profile_takes_most_expensive():
    loop = make_loop(num_blocks=4, seg=4)
    loop.add_job(spec("a"), 0.0)
    loop.add_job(spec("h", profile=heavy_wordcount()), 0.0)
    it = loop.build_iteration(4)
    assert it.profile.name == "wordcount-heavy"
    assert it.profile_for(0).name == "wordcount-heavy"


def test_invalid_chunk_size():
    loop = make_loop()
    with pytest.raises(SchedulingError):
        loop.build_iteration(0)
