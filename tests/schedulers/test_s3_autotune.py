"""Segment-size autotuner tests."""

import pytest

from repro.common.errors import ConfigError
from repro.schedulers.s3.autotune import (
    SegmentCostModel,
    paper_ideal_within,
    recommend_blocks_per_segment,
)

#: The paper's geometry with the calibrated constants.
PAPER = SegmentCostModel(num_blocks=2560, map_slots=40,
                         task_time_s=4.2, iteration_overhead_s=0.75)


def test_iteration_time_waves():
    assert PAPER.iteration_time(40) == pytest.approx(4.95)
    assert PAPER.iteration_time(41) == pytest.approx(2 * 4.2 + 0.75)
    assert PAPER.iteration_time(80) == pytest.approx(2 * 4.2 + 0.75)


def test_cycle_time_at_slot_count():
    # 64 iterations of one wave each.
    assert PAPER.cycle_time(40) == pytest.approx(64 * 4.95)


def test_small_segments_penalised():
    """m = M/4 idles 3/4 of the cluster: cycle blows up ~4x."""
    assert PAPER.cycle_time(10) > 3.5 * PAPER.cycle_time(40)


def test_recommendation_at_least_slot_count():
    best = recommend_blocks_per_segment(PAPER)
    assert best >= PAPER.map_slots
    assert best % PAPER.map_slots == 0 or best == PAPER.num_blocks


def test_paper_ideal_near_optimal():
    """With the calibrated overhead, m = M is within ~12% of the optimum —
    the analytic counterpart of the abl-seg sweep (whose simulated tail
    gains <4%; the analytic model slightly overweights the overhead)."""
    assert paper_ideal_within(PAPER, tolerance=0.12)
    assert not paper_ideal_within(PAPER, tolerance=0.01)


def test_heavy_overhead_pushes_optimum_up():
    """Expensive sub-job launches favour larger segments."""
    pricey = SegmentCostModel(num_blocks=2560, map_slots=40,
                              task_time_s=4.2, iteration_overhead_s=10.0)
    assert (recommend_blocks_per_segment(pricey)
            > recommend_blocks_per_segment(PAPER))
    assert not paper_ideal_within(pricey, tolerance=0.10)


def test_zero_overhead_makes_slot_count_optimal():
    free = SegmentCostModel(num_blocks=2560, map_slots=40,
                            task_time_s=4.2, iteration_overhead_s=0.0)
    assert recommend_blocks_per_segment(free) == 40


def test_recommendation_capped_by_file():
    tiny = SegmentCostModel(num_blocks=60, map_slots=40,
                            task_time_s=4.2, iteration_overhead_s=5.0)
    assert recommend_blocks_per_segment(tiny) <= 60


def test_validation():
    with pytest.raises(ConfigError):
        SegmentCostModel(num_blocks=0, map_slots=40, task_time_s=1.0,
                         iteration_overhead_s=0.0)
    with pytest.raises(ConfigError):
        SegmentCostModel(num_blocks=10, map_slots=40, task_time_s=0.0,
                         iteration_overhead_s=0.0)
    with pytest.raises(ConfigError):
        PAPER.iteration_time(0)
    with pytest.raises(ConfigError):
        recommend_blocks_per_segment(PAPER, max_multiple_of_slots=0)


def test_model_agrees_with_simulation_ablation():
    """The analytic cycle ratios track the simulated abl-seg sweep.

    The sweep's TETs (2092 / 919 / 887 at m = 10/40/160; EXPERIMENTS.md)
    include the ~520 s arrival span of the sparse pattern, so the model's
    cycle-time ratios are compared against span-corrected TETs.
    """
    span = 520.0
    sim_ratio_10 = (2092 - span) / (919 - span)
    sim_ratio_160 = (887 - span) / (919 - span)
    assert (PAPER.cycle_time(10) / PAPER.cycle_time(40)
            == pytest.approx(sim_ratio_10, rel=0.1))
    assert (PAPER.cycle_time(160) / PAPER.cycle_time(40)
            == pytest.approx(sim_ratio_160, rel=0.1))
