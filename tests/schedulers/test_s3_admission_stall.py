"""Regression: the admission cap must never strand waiting jobs (liveness).

``S3Scheduler._launch_iteration`` gives up silently when
``ScanLoop.build_iteration`` returns ``None`` — which is exactly what
happens when the admission cap defers every waiting job.  Before the fix,
the only re-arm paths were map completion and job arrival; when the cap is
freed by a *reduce-side* job completion (the last event the system will
ever see), waiting jobs were stranded forever and the driver drained with
incomplete jobs.

The stall needs the strictest cap semantics — a job holds its admission
slot until it *fully* completes, reduce included — which these tests pin
onto the ``build_iteration`` seam: while any merged reduce is in flight
and the loop has no scanning job, every waiting job is deferred, exactly
as ``ScanLoop._admit_waiting`` defers when the cap is exhausted.  The
scheduler must recover by re-arming when the job completion frees the cap.
"""

from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.schedulers.s3 import S3Config, S3Scheduler
from repro.schedulers.s3.scanloop import ScanLoop


def _strict_cap(scheduler, monkeypatch):
    """Make the cap outlast the scan: defer all admissions while a merged
    reduce is still running and no job is actively scanning."""
    original_build = ScanLoop.build_iteration

    def strict_cap_build(self, chunk_size, *, max_jobs=None):
        if scheduler._reducing and not self.active:
            return None  # cap exhausted: every waiting job deferred
        return original_build(self, chunk_size, max_jobs=max_jobs)

    monkeypatch.setattr(ScanLoop, "build_iteration", strict_cap_build)


def _capped_driver(small_cluster_config, small_dfs_config, *, blocks=8):
    scheduler = S3Scheduler(S3Config(max_jobs_per_iteration=1))
    driver = SimulationDriver(
        scheduler, cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0,
                             subjob_overhead_s=0.0))
    driver.register_file("f", 64.0 * blocks)
    return scheduler, driver


def test_cap_freed_by_job_completion_readmits_waiting_job(
        small_cluster_config, small_dfs_config, fast_profile, job_factory,
        monkeypatch):
    """cap=1, two jobs on one file: the second must complete, not hang."""
    scheduler, driver = _capped_driver(small_cluster_config, small_dfs_config)
    _strict_cap(scheduler, monkeypatch)
    driver.submit_all(job_factory(fast_profile, 2), [0.0, 0.0])
    result = driver.run()  # pre-fix: SimulationError (j1 stranded forever)
    assert result.all_complete
    # Strictly sequential under the cap: j1 launches only after j0 is done.
    assert (result.timeline("j1").first_launch
            >= result.timeline("j0").completed)


def test_cap_stall_recovery_chains_across_many_jobs(
        small_cluster_config, small_dfs_config, fast_profile, job_factory,
        monkeypatch):
    """Every completion must re-arm in turn: three stranded jobs drain."""
    scheduler, driver = _capped_driver(small_cluster_config, small_dfs_config)
    _strict_cap(scheduler, monkeypatch)
    driver.submit_all(job_factory(fast_profile, 4),
                      [0.0, 0.0, 0.0, 0.0])
    result = driver.run()
    assert result.all_complete
    completions = sorted(result.timelines[f"j{i}"].completed
                         for i in range(4))
    assert completions == sorted(set(completions)), \
        "capped jobs must complete one after another"


def test_without_injected_cap_semantics_no_stall_and_no_overlap(
        small_cluster_config, small_dfs_config, fast_profile, job_factory):
    """The stock cap (freed at scan completion) was already live; the fix
    must not change its scheduling outcome."""
    scheduler, driver = _capped_driver(small_cluster_config, small_dfs_config,
                                       blocks=16)
    driver.submit_all(job_factory(fast_profile, 2), [0.0, 0.0])
    result = driver.run()
    assert result.all_complete
    launches = result.trace.filter(kind="s3.subjob.launch")
    assert all(r.detail["jobs"] == 1 for r in launches)
