"""FIFO scheduler behaviour tests."""

import pytest

from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.job import JobSpec
from repro.metrics.measures import compute_metrics
from repro.schedulers.fifo import FifoScheduler


def run_fifo(small_cluster_config, small_dfs_config, jobs, arrivals,
             blocks=16, cost=None):
    driver = SimulationDriver(
        FifoScheduler(), cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=cost or CostModel(job_submit_overhead_s=0.0))
    driver.register_file("f", 64.0 * blocks)
    driver.submit_all(jobs, arrivals)
    return driver.run()


def test_jobs_execute_sequentially(small_cluster_config, small_dfs_config,
                                   fast_profile, job_factory):
    """Two simultaneous jobs: the second's maps wait for the first's."""
    jobs = job_factory(fast_profile, 2)
    result = run_fifo(small_cluster_config, small_dfs_config, jobs, [0.0, 0.0])
    first_done = result.timeline("j0").completed
    second_done = result.timeline("j1").completed
    # Job 0: 2 map waves (~1.6s each) + reduce 2s ~ 5.2; job 1 roughly doubles.
    assert second_done > first_done
    metrics = compute_metrics("FIFO", result.timelines)
    # Sequential: TET ~ 2x single-job map phases.
    single_map_phase = 2 * 1.6
    assert metrics.tet == pytest.approx(2 * single_map_phase + 2.0, abs=0.5)


def test_no_scan_sharing(small_cluster_config, small_dfs_config,
                         fast_profile, job_factory):
    """FIFO launches one map task per block *per job*."""
    jobs = job_factory(fast_profile, 3)
    result = run_fifo(small_cluster_config, small_dfs_config, jobs,
                      [0.0, 0.0, 0.0], blocks=8)
    map_starts = result.trace.filter(kind="task.start.map")
    assert len(map_starts) == 3 * 8
    assert all(r.detail["jobs"] == 1 for r in map_starts)


def test_idle_cluster_starts_immediately(small_cluster_config,
                                         small_dfs_config, fast_profile,
                                         job_factory):
    jobs = job_factory(fast_profile, 1)
    result = run_fifo(small_cluster_config, small_dfs_config, jobs, [50.0])
    assert result.timeline("j0").first_launch == 50.0


def test_submit_overhead_delays_start(small_cluster_config, small_dfs_config,
                                      fast_profile, job_factory):
    jobs = job_factory(fast_profile, 1)
    cost = CostModel(job_submit_overhead_s=7.5)
    result = run_fifo(small_cluster_config, small_dfs_config, jobs, [0.0],
                      cost=cost)
    assert result.timeline("j0").first_launch == pytest.approx(7.5)


def test_priority_jumps_pending_queue(small_cluster_config, small_dfs_config,
                                      fast_profile):
    """A high-priority job submitted later overtakes queued normal jobs."""
    jobs = [JobSpec(job_id="a", file_name="f", profile=fast_profile),
            JobSpec(job_id="b", file_name="f", profile=fast_profile),
            JobSpec(job_id="hi", file_name="f", profile=fast_profile,
                    priority=10)]
    result = run_fifo(small_cluster_config, small_dfs_config, jobs,
                      [0.0, 0.0, 0.1], blocks=32)
    # "hi" must finish before "b" (which was ahead in the queue but lower
    # priority and had not started when "hi" arrived).
    assert result.timeline("hi").completed < result.timeline("b").completed


def test_running_job_not_preempted(small_cluster_config, small_dfs_config,
                                   fast_profile):
    jobs = [JobSpec(job_id="a", file_name="f", profile=fast_profile),
            JobSpec(job_id="hi", file_name="f", profile=fast_profile,
                    priority=10)]
    result = run_fifo(small_cluster_config, small_dfs_config, jobs,
                      [0.0, 0.5], blocks=32)
    # Job "a" started at 0; the high-priority job waits for its maps.
    a_map_finishes = [r.time for r in result.trace.filter(
        kind="task.start.map") if r.subject.startswith("fifo:a")]
    hi_map_starts = [r.time for r in result.trace.filter(
        kind="task.start.map") if r.subject.startswith("fifo:hi")]
    assert min(hi_map_starts) >= max(a_map_finishes)


def test_reduce_overlaps_next_jobs_maps(small_cluster_config, small_dfs_config,
                                        fast_profile, job_factory):
    """Reduces run on separate slots, overlapping the next job's maps."""
    jobs = job_factory(fast_profile, 2)
    result = run_fifo(small_cluster_config, small_dfs_config, jobs,
                      [0.0, 0.0], blocks=16)
    j0_reduce_start = min(r.time for r in result.trace.filter(
        kind="task.start.reduce") if r.subject.startswith("fifo:j0"))
    j1_map_start = min(r.time for r in result.trace.filter(
        kind="task.start.map") if r.subject.startswith("fifo:j1"))
    assert j1_map_start <= j0_reduce_start + 1e-9
