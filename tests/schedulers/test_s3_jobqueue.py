"""Job Queue Manager (Algorithm 1) tests."""

import pytest

from repro.common.config import DfsConfig
from repro.common.errors import SchedulingError
from repro.dfs.namenode import NameNode
from repro.dfs.placement import RoundRobinPlacement
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import normal_wordcount
from repro.schedulers.s3.jobqueue import JobQueueManager


@pytest.fixture
def namenode():
    nn = NameNode(DfsConfig(block_size_mb=64.0),
                  RoundRobinPlacement(["n0", "n1"]))
    nn.create_file("f1", 64.0 * 8)
    nn.create_file("f2", 64.0 * 4)
    return nn


def spec(job_id, file_name="f1"):
    return JobSpec(job_id=job_id, file_name=file_name,
                   profile=normal_wordcount())


def test_loop_created_per_file(namenode):
    jqm = JobQueueManager(namenode, 4)
    loop1 = jqm.loop_for("f1")
    loop2 = jqm.loop_for("f2")
    assert loop1 is not loop2
    assert jqm.loop_for("f1") is loop1  # cached


def test_admit_routes_by_file(namenode):
    jqm = JobQueueManager(namenode, 4)
    jqm.admit(spec("a", "f1"), 0.0)
    jqm.admit(spec("b", "f2"), 0.0)
    assert len(jqm.loop_for("f1").waiting) == 1
    assert len(jqm.loop_for("f2").waiting) == 1
    assert jqm.pending_jobs() == 2


def test_has_work(namenode):
    jqm = JobQueueManager(namenode, 4)
    assert not jqm.has_work()
    jqm.admit(spec("a"), 0.0)
    assert jqm.has_work()


def test_next_loop_round_robin(namenode):
    jqm = JobQueueManager(namenode, 4)
    jqm.admit(spec("a", "f1"), 0.0)
    jqm.admit(spec("b", "f2"), 0.0)
    first = jqm.next_loop_with_work()
    second = jqm.next_loop_with_work()
    assert {first.dfs_file.name, second.dfs_file.name} == {"f1", "f2"}
    assert first is not second


def test_next_loop_skips_drained(namenode):
    jqm = JobQueueManager(namenode, 4)
    jqm.admit(spec("b", "f2"), 0.0)
    loop = jqm.next_loop_with_work()
    assert loop.dfs_file.name == "f2"
    # Drain it: f2 has 4 blocks -> one iteration of 4.
    loop.build_iteration(4)
    assert jqm.next_loop_with_work() is None


def test_empty_manager(namenode):
    jqm = JobQueueManager(namenode, 4)
    assert jqm.next_loop_with_work() is None


def test_unknown_file_rejected(namenode):
    jqm = JobQueueManager(namenode, 4)
    with pytest.raises(Exception):
        jqm.admit(spec("a", "ghost"), 0.0)


def test_invalid_segment_size(namenode):
    with pytest.raises(SchedulingError):
        JobQueueManager(namenode, 0)
