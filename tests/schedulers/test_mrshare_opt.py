"""MRShare optimal-grouping DP tests."""

import pytest

from repro.common.errors import SchedulingError
from repro.experiments.paperconfig import paper_cost_model, sparse_pattern
from repro.mapreduce.profile import normal_wordcount
from repro.schedulers.mrshare_opt import (
    optimal_grouping,
    optimal_mrshare,
    predicted_tet,
)

GEOMETRY = dict(num_blocks=2560, block_mb=64.0, map_slots=40)


@pytest.fixture
def model():
    return dict(profile=normal_wordcount(), cost=paper_cost_model(),
                **GEOMETRY)


def test_dense_arrivals_single_batch_optimal(model):
    """All jobs at once: one combined batch dominates (Figure 4(b))."""
    plan = optimal_grouping([0.0] * 6, objective="tet", **model)
    assert plan.num_batches == 1
    assert plan.groups == (tuple(range(6)),)


def test_very_sparse_arrivals_no_batching(model):
    """Arrivals further apart than a job: batching only adds waiting."""
    arrivals = [0.0, 2000.0, 4000.0]
    plan = optimal_grouping(arrivals, objective="tet", **model)
    assert plan.num_batches == 3
    assert all(len(g) == 1 for g in plan.groups)


def test_groups_partition_in_order(model):
    plan = optimal_grouping(sparse_pattern(), objective="tet", **model)
    flat = [j for g in plan.groups for j in g]
    assert flat == list(range(10))


def test_optimal_beats_paper_groupings_on_tet(model):
    """The DP's TET is <= every hand-picked MRS1/2/3 grouping's."""
    arrivals = sparse_pattern()
    plan = optimal_grouping(arrivals, objective="tet", **model)
    for groups in ([list(range(10))],
                   [list(range(6)), list(range(6, 10))],
                   [[0, 1, 2], [3, 4, 5], [6, 7, 8, 9]]):
        hand_picked = predicted_tet(groups, arrivals, **model)
        assert plan.predicted_finish <= hand_picked + 1e-9


def test_art_objective_prefers_smaller_early_batches(model):
    """Minimising response time splits more finely than minimising TET."""
    arrivals = sparse_pattern()
    tet_plan = optimal_grouping(arrivals, objective="tet", **model)
    art_plan = optimal_grouping(arrivals, objective="art", **model)
    assert art_plan.num_batches >= tet_plan.num_batches
    # The ART-optimal plan's summed response is no worse than TET-optimal's.
    def total_response(plan):
        finish, total = 0.0, 0.0
        cost, profile = model["cost"], model["profile"]
        for group in plan.groups:
            ready = max(arrivals[j] for j in group)
            makespan = cost.combined_job_makespan_s(
                profile, len(group), GEOMETRY["num_blocks"],
                GEOMETRY["block_mb"], GEOMETRY["map_slots"])
            finish = max(finish, ready) + makespan
            total += sum(finish - arrivals[j] for j in group)
        return total
    assert total_response(art_plan) <= total_response(tet_plan) + 1e-6


def test_predicted_finish_matches_simulation(model,
                                             small_cluster_config):
    """The DP's analytic TET matches the simulator within task granularity."""
    from repro.experiments.base import run_scheduler
    from repro.mapreduce.job import JobSpec

    arrivals = sparse_pattern()
    plan = optimal_grouping(arrivals, objective="tet", **model)
    scheduler = optimal_mrshare(arrivals, objective="tet", **model)
    profile = model["profile"]
    jobs = [JobSpec(job_id=f"j{i}", file_name="f", profile=profile)
            for i in range(10)]
    metrics, _ = run_scheduler(scheduler, jobs, arrivals,
                               file_name="f", file_size_mb=2560 * 64.0)
    assert metrics.tet == pytest.approx(plan.predicted_finish, rel=0.02)


def test_validation(model):
    with pytest.raises(SchedulingError):
        optimal_grouping([], objective="tet", **model)
    with pytest.raises(SchedulingError):
        optimal_grouping([5.0, 1.0], objective="tet", **model)
    with pytest.raises(SchedulingError):
        optimal_grouping([0.0], objective="bogus", **model)
