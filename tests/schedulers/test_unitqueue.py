"""Direct ExecUnit mechanics tests (FIFO/MRShare's shared engine)."""

from repro.common.config import DfsConfig
from repro.dfs.namenode import NameNode
from repro.dfs.placement import RoundRobinPlacement
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import normal_wordcount
from repro.schedulers.unitqueue import ExecUnit


def make_unit(num_blocks=8, num_jobs=2, reduce_tasks=4):
    namenode = NameNode(DfsConfig(block_size_mb=64.0),
                        RoundRobinPlacement(["n0", "n1"]))
    dfs_file = namenode.create_file("f", 64.0 * num_blocks)
    profile = normal_wordcount().with_(num_reduce_tasks=reduce_tasks)
    jobs = tuple(JobSpec(job_id=f"j{i}", file_name="f", profile=profile)
                 for i in range(num_jobs))
    return ExecUnit(unit_id="u0", jobs=jobs, profile=profile,
                    dfs_file=dfs_file, ready_time=0.0)


def test_initial_accounting():
    unit = make_unit(num_blocks=8, num_jobs=3, reduce_tasks=5)
    assert unit.maps_outstanding == 8
    assert unit.reduces_to_launch == 5
    assert unit.reduces_outstanding == 5
    assert unit.batch_size == 3
    assert unit.job_ids == ("j0", "j1", "j2")
    assert not unit.maps_all_assigned
    assert not unit.maps_all_complete
    assert not unit.done


def test_assignment_progress():
    unit = make_unit(num_blocks=2)
    assert len(unit.assigner) == 2
    unit.assigner.pending.clear()
    assert unit.maps_all_assigned
    # Assignment is not completion.
    assert not unit.maps_all_complete


def test_reduce_task_count_uses_max_member():
    namenode = NameNode(DfsConfig(block_size_mb=64.0),
                        RoundRobinPlacement(["n0"]))
    dfs_file = namenode.create_file("f", 64.0)
    small = normal_wordcount().with_(num_reduce_tasks=2)
    big = normal_wordcount().with_(num_reduce_tasks=9)
    unit = ExecUnit(unit_id="u", jobs=(
        JobSpec(job_id="a", file_name="f", profile=small),
        JobSpec(job_id="b", file_name="f", profile=big)),
        profile=big, dfs_file=dfs_file, ready_time=0.0)
    assert unit.reduces_to_launch == 9
