"""Periodical slot-checker tests."""

import pytest

from repro.cluster.cluster import Cluster
from repro.common.config import ClusterConfig
from repro.common.errors import ConfigError
from repro.schedulers.s3.slotcheck import SlotChecker


def feed(checker, node_id, durations):
    for d in durations:
        checker.observe(node_id, d)


def test_no_verdict_with_few_nodes():
    checker = SlotChecker()
    feed(checker, "n0", [1.0, 1.0])
    feed(checker, "n1", [5.0, 5.0])
    assert checker.slow_nodes() == set()  # needs >= 3 judged nodes


def test_detects_outlier():
    checker = SlotChecker(threshold=1.5)
    for n in ("n0", "n1", "n2"):
        feed(checker, n, [1.0, 1.0])
    feed(checker, "slow", [4.0, 4.0])
    assert checker.slow_nodes() == {"slow"}


def test_min_samples_respected():
    checker = SlotChecker(threshold=1.5, min_samples=3)
    for n in ("n0", "n1", "n2"):
        feed(checker, n, [1.0, 1.0, 1.0])
    feed(checker, "slow", [9.0, 9.0])  # only two samples
    assert checker.slow_nodes() == set()


def test_ewma_forgets_old_slowness():
    checker = SlotChecker(threshold=1.5, ewma_alpha=0.5)
    for n in ("n0", "n1", "n2"):
        feed(checker, n, [1.0, 1.0])
    feed(checker, "s", [10.0, 10.0])
    assert "s" in checker.slow_nodes()
    feed(checker, "s", [1.0] * 8)  # recovered
    assert checker.slow_nodes() == set()


def test_apply_updates_cluster_exclusions():
    cluster = Cluster.from_config(ClusterConfig(num_nodes=4, rack_sizes=(4,)))
    checker = SlotChecker(threshold=1.5)
    for nid in ("node_000", "node_001", "node_002"):
        feed(checker, nid, [1.0, 1.0])
    feed(checker, "node_003", [6.0, 6.0])
    excluded = checker.apply(cluster)
    assert excluded == {"node_003"}
    assert cluster.node("node_003").excluded
    # Recovery re-includes.
    feed(checker, "node_003", [1.0] * 10)
    assert checker.apply(cluster) == set()
    assert not cluster.node("node_003").excluded


def test_smoothed_value():
    checker = SlotChecker(ewma_alpha=0.5)
    checker.observe("n0", 2.0)
    checker.observe("n0", 4.0)
    assert checker.smoothed("n0") == pytest.approx(3.0)
    assert checker.smoothed("ghost") is None


def test_validation():
    with pytest.raises(ConfigError):
        SlotChecker(threshold=1.0)
    with pytest.raises(ConfigError):
        SlotChecker(ewma_alpha=0.0)
    checker = SlotChecker()
    with pytest.raises(ConfigError):
        checker.observe("n0", -1.0)
