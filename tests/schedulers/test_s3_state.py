"""S3 per-job scan state tests."""

import pytest

from repro.common.errors import SchedulingError
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import normal_wordcount
from repro.schedulers.s3.state import S3JobState


def make_state(total=10):
    spec = JobSpec(job_id="j", file_name="f", profile=normal_wordcount())
    return S3JobState(spec=spec, total_blocks=total, arrival_time=0.0)


def test_initial_state():
    state = make_state()
    assert not state.admitted
    assert state.remaining == 10
    assert not state.done_scanning
    assert state.covered_blocks() == set()


def test_admit_sets_start():
    state = make_state()
    state.admit(7)
    assert state.admitted and state.start_block == 7


def test_double_admit_rejected():
    state = make_state()
    state.admit(0)
    with pytest.raises(SchedulingError, match="twice"):
        state.admit(1)


def test_admit_range_checked():
    with pytest.raises(SchedulingError):
        make_state().admit(10)


def test_advance_before_admit_rejected():
    with pytest.raises(SchedulingError):
        make_state().advance(1)


def test_advance_and_wraparound_coverage():
    state = make_state(total=10)
    state.admit(7)
    state.advance(3)   # blocks 7,8,9
    assert state.covered_blocks() == {7, 8, 9}
    state.advance(4)   # wraps: 0,1,2,3
    assert state.covered_blocks() == {7, 8, 9, 0, 1, 2, 3}
    state.advance(3)
    assert state.done_scanning
    assert state.covered_blocks() == set(range(10))


def test_over_advance_rejected():
    state = make_state(total=4)
    state.admit(0)
    with pytest.raises(SchedulingError):
        state.advance(5)


def test_zero_blocks_rejected():
    spec = JobSpec(job_id="j", file_name="f", profile=normal_wordcount())
    with pytest.raises(SchedulingError):
        S3JobState(spec=spec, total_blocks=0, arrival_time=0.0)
