"""Analytic S3 predictor unit tests (accuracy tests live in planning)."""

import pytest

from repro.common.errors import SchedulingError
from repro.experiments.paperconfig import paper_cost_model
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.profile import normal_wordcount
from repro.schedulers.s3.analytic import predict_s3

GEOMETRY = dict(profile=normal_wordcount(), cost=paper_cost_model(),
                num_blocks=2560, block_mb=64.0, map_slots=40)


def test_single_job_prediction():
    pred = predict_s3([0.0], **GEOMETRY)
    # 64 iterations of (0.75 overhead + 4.2 wave) + final reduce slice.
    assert pred.iterations == 64
    expected = 64 * (0.75 + 4.2) + 16.0 / 64
    assert pred.tet == pytest.approx(expected, rel=0.01)
    assert pred.art == pred.tet


def test_simultaneous_jobs_share_everything():
    solo = predict_s3([0.0], **GEOMETRY)
    pair = predict_s3([0.0, 0.0], **GEOMETRY)
    # Far cheaper than 2x solo; slightly above 1x (batch overhead).
    assert solo.tet < pair.tet < 1.2 * solo.tet
    assert pair.iterations == 64


def test_staggered_job_wraps_around():
    pred = predict_s3([0.0, 100.0], **GEOMETRY)
    assert pred.iterations > 64
    # The late job still completes one full cycle after joining.
    assert pred.responses[1] >= 64 * 4.2


def test_idle_gap_handled():
    pred = predict_s3([0.0, 5000.0], **GEOMETRY)
    assert pred.responses[0] == pytest.approx(pred.responses[1], rel=0.01)
    assert pred.tet > 5000.0


def test_zero_overhead_model():
    cost = CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0)
    pred = predict_s3([0.0], profile=GEOMETRY["profile"], cost=cost,
                      num_blocks=2560, block_mb=64.0, map_slots=40)
    assert pred.tet == pytest.approx(64 * 4.2 + 0.25, rel=0.01)


def test_custom_segment_size():
    pred = predict_s3([0.0], blocks_per_segment=80, **GEOMETRY)
    assert pred.iterations == 32


def test_validation():
    with pytest.raises(SchedulingError):
        predict_s3([], **GEOMETRY)
    with pytest.raises(SchedulingError):
        predict_s3([10.0, 0.0], **GEOMETRY)
    with pytest.raises(SchedulingError):
        predict_s3([0.0], profile=GEOMETRY["profile"],
                   cost=GEOMETRY["cost"], num_blocks=0, block_mb=64.0,
                   map_slots=40)
