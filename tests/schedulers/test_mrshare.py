"""MRShare batch scheduler tests."""

import pytest

from repro.common.errors import SchedulingError
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.schedulers.mrshare import MRShareScheduler


def run_mrshare(scheduler, small_cluster_config, small_dfs_config, jobs,
                arrivals, blocks=16):
    driver = SimulationDriver(
        scheduler, cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0))
    driver.register_file("f", 64.0 * blocks)
    driver.submit_all(jobs, arrivals)
    return driver.run()


def test_grouping_validation():
    with pytest.raises(SchedulingError):
        MRShareScheduler([])
    with pytest.raises(SchedulingError, match="non-empty"):
        MRShareScheduler([[0], []])
    with pytest.raises(SchedulingError, match="overlap"):
        MRShareScheduler([[0, 1], [1, 2]])
    with pytest.raises(SchedulingError, match="partition"):
        MRShareScheduler([[0, 2]])


def test_factory_variants():
    assert MRShareScheduler.single_batch(10).name == "MRS1"
    assert MRShareScheduler.paper_two_batches(10).name == "MRS2"
    assert MRShareScheduler.paper_three_batches(10).name == "MRS3"
    with pytest.raises(SchedulingError):
        MRShareScheduler.paper_two_batches(3)


def test_batch_waits_for_all_members(small_cluster_config, small_dfs_config,
                                     fast_profile, job_factory):
    jobs = job_factory(fast_profile, 2)
    result = run_mrshare(MRShareScheduler.single_batch(2),
                         small_cluster_config, small_dfs_config,
                         jobs, [0.0, 30.0])
    # No task can start before the last member arrives.
    first_map = min(r.time for r in result.trace.filter(kind="task.start.map"))
    assert first_map >= 30.0
    # Both jobs complete at the same instant (batch completion).
    assert (result.timeline("j0").completed
            == result.timeline("j1").completed)


def test_batch_shares_scan(small_cluster_config, small_dfs_config,
                           fast_profile, job_factory):
    jobs = job_factory(fast_profile, 3)
    result = run_mrshare(MRShareScheduler.single_batch(3),
                         small_cluster_config, small_dfs_config,
                         jobs, [0.0] * 3, blocks=8)
    map_starts = result.trace.filter(kind="task.start.map")
    assert len(map_starts) == 8  # one scan for all three jobs
    assert all(r.detail["jobs"] == 3 for r in map_starts)


def test_combined_tasks_cost_more(small_cluster_config, small_dfs_config,
                                  fast_profile, job_factory):
    single = run_mrshare(MRShareScheduler.single_batch(1),
                         small_cluster_config, small_dfs_config,
                         job_factory(fast_profile, 1), [0.0], blocks=8)
    batch = run_mrshare(MRShareScheduler.single_batch(4),
                        small_cluster_config, small_dfs_config,
                        job_factory(fast_profile, 4), [0.0] * 4, blocks=8)
    t1 = single.trace.filter(kind="task.start.map")[0].detail["duration"]
    t4 = batch.trace.filter(kind="task.start.map")[0].detail["duration"]
    assert t4 > t1
    # beta = 0.1: 4 jobs -> cpu factor 1.3 on the 0.5s cpu share.
    assert t4 - t1 == pytest.approx(0.5 * 0.3, abs=1e-6)


def test_batches_run_in_ready_order(small_cluster_config, small_dfs_config,
                                    fast_profile, job_factory):
    jobs = job_factory(fast_profile, 4)
    scheduler = MRShareScheduler([[0, 1], [2, 3]])
    result = run_mrshare(scheduler, small_cluster_config, small_dfs_config,
                         jobs, [0.0, 1.0, 2.0, 3.0], blocks=16)
    b0_done = result.timeline("j0").completed
    b1_done = result.timeline("j2").completed
    assert b0_done < b1_done


def test_unexpected_extra_job_rejected(small_cluster_config, small_dfs_config,
                                       fast_profile, job_factory):
    jobs = job_factory(fast_profile, 2)
    driver = SimulationDriver(MRShareScheduler([[0]]),
                              cluster_config=small_cluster_config,
                              dfs_config=small_dfs_config)
    driver.register_file("f", 64.0)
    driver.submit_all(jobs, [0.0, 1.0])
    with pytest.raises(SchedulingError, match="not covered"):
        driver.run()


def test_mrshare_tet_beats_fifo_when_dense(small_cluster_config,
                                           small_dfs_config, fast_profile,
                                           job_factory):
    """The core MRShare claim: batching dense jobs shrinks TET."""
    from repro.metrics.measures import compute_metrics
    from repro.schedulers.fifo import FifoScheduler

    arrivals = [0.0] * 4
    fifo_result = run_mrshare(FifoScheduler(), small_cluster_config,
                              small_dfs_config, job_factory(fast_profile, 4),
                              arrivals, blocks=16)
    mrs_result = run_mrshare(MRShareScheduler.single_batch(4),
                             small_cluster_config, small_dfs_config,
                             job_factory(fast_profile, 4), arrivals, blocks=16)
    fifo = compute_metrics("FIFO", fifo_result.timelines)
    mrs = compute_metrics("MRS1", mrs_result.timelines)
    assert mrs.tet < fifo.tet
