"""Locality-aware block assignment tests."""

import pytest

from repro.cluster.cluster import Cluster
from repro.common.config import ClusterConfig, DfsConfig
from repro.dfs.namenode import NameNode
from repro.dfs.placement import RoundRobinPlacement
from repro.common.errors import SchedulingError
from repro.schedulers.assignment import (BlockAssigner,
                                         group_blocks_by_location,
                                         pick_reduce_node)


@pytest.fixture
def cluster() -> Cluster:
    return Cluster.from_config(ClusterConfig(num_nodes=4, rack_sizes=(2, 2)))


@pytest.fixture
def dfs_file(cluster):
    namenode = NameNode(DfsConfig(block_size_mb=64.0),
                        RoundRobinPlacement(cluster.node_ids))
    return namenode.create_file("f", 64.0 * 8)  # blocks i live on node i%4


def test_prefers_node_local(cluster, dfs_file):
    assigner = BlockAssigner(dfs_file, range(8))
    node, block, local = assigner.next_assignment(cluster)
    assert local
    assert dfs_file.block(block).locations == (node.node_id,)


def test_all_assignments_local_when_possible(cluster, dfs_file):
    assigner = BlockAssigner(dfs_file, range(8))
    locals_seen = []
    for _ in range(4):  # one wave: 4 slots
        node, block, local = assigner.next_assignment(cluster)
        node.acquire_map_slot(f"t{block}")
        locals_seen.append(local)
    assert all(locals_seen)
    assert assigner.next_assignment(cluster) is None  # no free slots


def test_falls_back_to_remote(cluster, dfs_file):
    # Only blocks living on node_000 remain, but node_000 is busy.
    assigner = BlockAssigner(dfs_file, [0, 4])
    cluster.node("node_000").acquire_map_slot("busy")
    node, block, local = assigner.next_assignment(cluster)
    assert node.node_id != "node_000"
    assert not local


def test_rack_local_preferred_over_off_rack(cluster, dfs_file):
    # Block 0 lives on node_000 (rack_0); occupy node_000 and node_001
    # (rack_0's other node) is the rack-local candidate.
    assigner = BlockAssigner(dfs_file, [0])
    cluster.node("node_000").acquire_map_slot("busy")
    node, block, local = assigner.next_assignment(cluster)
    assert not local
    assert node.rack == "rack_0"


def test_exhausts_then_none(cluster, dfs_file):
    assigner = BlockAssigner(dfs_file, [3])
    assert assigner.next_assignment(cluster) is not None
    assert assigner.next_assignment(cluster) is None
    assert len(assigner) == 0


def test_respects_exclusions(cluster, dfs_file):
    cluster.set_excluded(["node_000"])
    assigner = BlockAssigner(dfs_file, [0])
    node, block, local = assigner.next_assignment(cluster,
                                                  include_excluded=False)
    assert node.node_id != "node_000"
    assert not local


def test_add_block_later(cluster, dfs_file):
    assigner = BlockAssigner(dfs_file, [])
    assert assigner.next_assignment(cluster) is None
    assigner.add(2)
    node, block, local = assigner.next_assignment(cluster)
    assert block == 2 and local


def test_pick_reduce_node(cluster):
    node = pick_reduce_node(cluster)
    assert node.node_id == "node_000"
    for nid in cluster.node_ids:
        cluster.node(nid).acquire_reduce_slot(f"r-{nid}")
    assert pick_reduce_node(cluster) is None


# --------------------------------------------- wave placement annotation

def test_group_blocks_by_location_prefers_first_holder():
    locations = {0: ("shard_00", "shard_01"), 1: ("shard_01", "shard_02"),
                 4: ("shard_00", "shard_01"), 2: ("shard_02", "shard_03")}
    plan = group_blocks_by_location(locations.__getitem__, [0, 1, 4, 2])
    assert plan == {"shard_00": [0, 4], "shard_01": [1], "shard_02": [2]}


def test_group_blocks_by_location_empty_wave():
    assert group_blocks_by_location(lambda i: ("local",), []) == {}


def test_group_blocks_by_location_rejects_holderless_block():
    with pytest.raises(SchedulingError, match="no replica holders"):
        group_blocks_by_location(lambda i: (), [7])
