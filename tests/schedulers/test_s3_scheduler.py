"""End-to-end S3 scheduler tests on the simulation driver."""

import pytest

from repro.common.config import ClusterConfig
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.job import JobSpec
from repro.metrics.measures import compute_metrics
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.s3 import S3Config, S3Scheduler


def run_s3(small_cluster_config, small_dfs_config, jobs, arrivals, *,
           blocks=16, config=None, cost=None, cluster_config=None):
    driver = SimulationDriver(
        S3Scheduler(config),
        cluster_config=cluster_config or small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=cost or CostModel(job_submit_overhead_s=0.0,
                                     subjob_overhead_s=0.0))
    driver.register_file("f", 64.0 * blocks)
    driver.submit_all(jobs, arrivals)
    return driver.run()


def test_single_job_completes(small_cluster_config, small_dfs_config,
                              fast_profile, job_factory):
    result = run_s3(small_cluster_config, small_dfs_config,
                    job_factory(fast_profile, 1), [0.0])
    assert result.all_complete
    # 16 blocks / 8 slots = 2 iterations of 8 maps each.
    launches = result.trace.filter(kind="s3.subjob.launch")
    assert len(launches) == 2
    assert all(r.detail["blocks"] == 8 for r in launches)


def test_shared_scan_batches_jobs(small_cluster_config, small_dfs_config,
                                  fast_profile, job_factory):
    result = run_s3(small_cluster_config, small_dfs_config,
                    job_factory(fast_profile, 3), [0.0, 0.0, 0.0], blocks=16)
    map_starts = result.trace.filter(kind="task.start.map")
    # One scan shared by all three jobs: 16 map tasks, each serving 3 jobs.
    assert len(map_starts) == 16
    assert all(r.detail["jobs"] == 3 for r in map_starts)


def test_late_job_joins_next_iteration(small_cluster_config, small_dfs_config,
                                       fast_profile, job_factory):
    jobs = job_factory(fast_profile, 2)
    # Job 1 arrives while iteration 1 is in flight.
    result = run_s3(small_cluster_config, small_dfs_config, jobs,
                    [0.0, 0.5], blocks=32)
    launches = result.trace.filter(kind="s3.subjob.launch")
    # Iterations: j0 alone (1st), then shared until j0 done, then j1's tail.
    assert launches[0].detail["jobs"] == 1
    assert launches[1].detail["jobs"] == 2
    # j1 covered the whole file despite starting mid-scan.
    assert result.all_complete


def test_circular_coverage_is_complete(small_cluster_config, small_dfs_config,
                                       fast_profile, job_factory):
    """Every job's map tasks cover every block exactly once."""
    jobs = job_factory(fast_profile, 3)
    result = run_s3(small_cluster_config, small_dfs_config, jobs,
                    [0.0, 2.0, 5.0], blocks=24)
    # Block coverage is asserted via job completion + no deadlock.
    assert result.all_complete


def test_waiting_time_short_vs_fifo(small_cluster_config, small_dfs_config,
                                    fast_profile, job_factory):
    """The paper's core claim: S3 admits arriving jobs at the next segment
    boundary instead of after the running job."""
    arrivals = [0.0, 1.0, 2.0]
    s3_result = run_s3(small_cluster_config, small_dfs_config,
                       job_factory(fast_profile, 3), arrivals, blocks=32)
    fifo_driver = SimulationDriver(
        FifoScheduler(), cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0))
    fifo_driver.register_file("f", 64.0 * 32)
    fifo_driver.submit_all(job_factory(fast_profile, 3), arrivals)
    fifo_result = fifo_driver.run()
    s3 = compute_metrics("S3", s3_result.timelines)
    fifo = compute_metrics("FIFO", fifo_result.timelines)
    assert s3.art < fifo.art
    assert s3.tet < fifo.tet
    assert s3.mean_waiting < fifo.mean_waiting


def test_subjob_overhead_delays_iterations(small_cluster_config,
                                           small_dfs_config, fast_profile,
                                           job_factory):
    cost = CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=3.0)
    result = run_s3(small_cluster_config, small_dfs_config,
                    job_factory(fast_profile, 1), [0.0], blocks=16, cost=cost)
    launches = [r.time for r in result.trace.filter(kind="s3.subjob.launch")]
    assert launches[0] == pytest.approx(3.0)
    # Second iteration launches one overhead after the first completes.
    first_maps_done = result.trace.filter(kind="s3.subjob.maps_done")[0].time
    assert launches[1] == pytest.approx(first_maps_done + 3.0)


def test_reduce_overlaps_next_iteration(small_cluster_config, small_dfs_config,
                                        fast_profile, job_factory):
    result = run_s3(small_cluster_config, small_dfs_config,
                    job_factory(fast_profile, 1), [0.0], blocks=24)
    # Reduce of iteration 1 starts while iteration 2's maps run.
    reduce_starts = [r.time for r in result.trace.filter(
        kind="task.start.reduce")]
    second_iter_map_start = [r.time for r in result.trace.filter(
        kind="task.start.map")][8]
    assert min(reduce_starts) <= second_iter_map_start + 1e-6


def test_job_completes_only_after_final_reduce(small_cluster_config,
                                               small_dfs_config, fast_profile,
                                               job_factory):
    result = run_s3(small_cluster_config, small_dfs_config,
                    job_factory(fast_profile, 1), [0.0], blocks=16)
    complete = result.trace.last("job.complete", "j0").time
    last_reduce = max(r.time for r in result.trace.filter(
        kind="task.finish.reduce"))
    assert complete == pytest.approx(last_reduce)


def test_idle_then_new_arrival(small_cluster_config, small_dfs_config,
                               fast_profile, job_factory):
    """The loop drains, goes idle, then a later job restarts it."""
    jobs = job_factory(fast_profile, 2)
    result = run_s3(small_cluster_config, small_dfs_config, jobs,
                    [0.0, 500.0], blocks=16)
    assert result.all_complete
    assert result.timeline("j1").first_launch >= 500.0


def test_multiple_files_round_robin(small_cluster_config, small_dfs_config,
                                    fast_profile):
    driver = SimulationDriver(
        S3Scheduler(), cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0))
    driver.register_file("f1", 64.0 * 8)
    driver.register_file("f2", 64.0 * 8)
    jobs = [JobSpec(job_id="a", file_name="f1", profile=fast_profile),
            JobSpec(job_id="b", file_name="f2", profile=fast_profile)]
    driver.submit_all(jobs, [0.0, 0.0])
    result = driver.run()
    assert result.all_complete
    files = {r.subject.split(":")[0] for r in result.trace.filter(
        kind="s3.subjob.launch")}
    assert files == {"f1", "f2"}


def test_heterogeneous_cluster_with_slot_check(small_dfs_config, fast_profile,
                                               job_factory):
    speeds = [1.0] * 7 + [0.25]
    cluster_config = ClusterConfig(num_nodes=8, rack_sizes=(4, 4),
                                   node_speeds=speeds)
    config = S3Config(slot_check_enabled=True, adaptive_segments=True,
                      slot_check_interval_s=2.0)
    result = run_s3(None, small_dfs_config, job_factory(fast_profile, 2),
                    [0.0, 1.0], blocks=64, config=config,
                    cluster_config=cluster_config)
    assert result.all_complete
    # The checker eventually excluded the slow node at least once.
    checks = result.trace.filter(kind="s3.slotcheck")
    assert any(r.detail["excluded"] > 0 for r in checks)


def test_custom_segment_size(small_cluster_config, small_dfs_config,
                             fast_profile, job_factory):
    config = S3Config(blocks_per_segment=4)
    result = run_s3(small_cluster_config, small_dfs_config,
                    job_factory(fast_profile, 1), [0.0], blocks=16,
                    config=config)
    launches = result.trace.filter(kind="s3.subjob.launch")
    assert len(launches) == 4
    assert all(r.detail["blocks"] == 4 for r in launches)


def test_max_jobs_per_iteration_defers(small_cluster_config, small_dfs_config,
                                       fast_profile, job_factory):
    config = S3Config(max_jobs_per_iteration=1)
    result = run_s3(small_cluster_config, small_dfs_config,
                    job_factory(fast_profile, 2), [0.0, 0.0], blocks=16,
                    config=config)
    assert result.all_complete
    launches = result.trace.filter(kind="s3.subjob.launch")
    assert all(r.detail["jobs"] == 1 for r in launches)
    # Strictly sequential: j1 starts only after j0's scan ends.
    assert (result.timeline("j1").first_launch
            >= result.timeline("j0").first_launch)
