"""Identifier-format tests."""

from repro.common import ids


def test_job_id_format():
    assert ids.job_id(3) == "job_0003"


def test_subjob_id_includes_segment():
    assert ids.subjob_id("job_0001", 12) == "job_0001.sub_0012"


def test_map_task_id_format():
    assert ids.map_task_id("job_0001", 120) == "job_0001.map_00120"


def test_reduce_task_id_format():
    assert ids.reduce_task_id("batch_0002", 7) == "batch_0002.red_0007"


def test_attempt_id_format():
    task = ids.map_task_id("job_0000", 1)
    assert ids.attempt_id(task, 0).endswith(".attempt_0")


def test_node_rack_block_ids():
    assert ids.node_id(7) == "node_007"
    assert ids.rack_id(2) == "rack_2"
    assert ids.block_id("corpus.txt", 42) == "corpus.txt#blk_00042"


def test_allocator_monotonic():
    alloc = ids.IdAllocator()
    assert alloc.next_job() == "job_0000"
    assert alloc.next_job() == "job_0001"
    assert alloc.next_batch() == "batch_0000"
    assert alloc.next_batch() == "batch_0001"


def test_allocators_independent():
    a, b = ids.IdAllocator(), ids.IdAllocator()
    a.next_job()
    assert b.next_job() == "job_0000"
