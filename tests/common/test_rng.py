"""Seeded RNG helper tests."""

import numpy as np

from repro.common.rng import DEFAULT_SEED, jittered, make_rng, spawn


def test_none_uses_default_seed():
    a, b = make_rng(None), make_rng(DEFAULT_SEED)
    assert a.integers(0, 1_000_000) == b.integers(0, 1_000_000)


def test_same_seed_same_stream():
    assert make_rng(7).random() == make_rng(7).random()


def test_different_seeds_differ():
    assert make_rng(7).random() != make_rng(8).random()


def test_generator_passthrough():
    gen = np.random.default_rng(3)
    assert make_rng(gen) is gen


def test_spawn_independent_children():
    children = spawn(make_rng(1), 3)
    values = {c.integers(0, 10**9) for c in children}
    assert len(values) == 3


def test_jittered_zero_sigma_is_identity():
    assert jittered(make_rng(1), 10.0, 0.0) == 10.0


def test_jittered_stays_positive():
    rng = make_rng(2)
    for _ in range(200):
        assert jittered(rng, 1.0, 2.0) > 0


def test_jittered_respects_floor():
    rng = make_rng(3)
    for _ in range(200):
        assert jittered(rng, 10.0, 5.0, floor=9.5) >= 9.5
