"""Unit-helper tests."""

import pytest

from repro.common import units


def test_gb_to_mb():
    assert units.gb(160) == 163840.0
    assert units.gb(0.5) == 512.0


def test_mb_identity():
    assert units.mb(64) == 64.0


def test_mb_bytes_round_trip():
    assert units.mb_to_bytes(1) == 1024 * 1024
    assert units.bytes_to_mb(units.mb_to_bytes(37.5)) == pytest.approx(37.5)


def test_minutes_and_hours():
    assert units.minutes(2) == 120.0
    assert units.hours(1.5) == 5400.0


def test_fmt_duration_seconds():
    assert units.fmt_duration(3.25) == "3.2s"


def test_fmt_duration_minutes():
    assert units.fmt_duration(75) == "1m15.0s"


def test_fmt_duration_hours():
    assert units.fmt_duration(3725) == "1h2m5s"


def test_fmt_duration_negative():
    assert units.fmt_duration(-75) == "-1m15.0s"


def test_fmt_size_gb():
    assert units.fmt_size_mb(163840) == "160.0GB"


def test_fmt_size_mb_and_kb():
    assert units.fmt_size_mb(64) == "64.0MB"
    assert units.fmt_size_mb(0.5) == "512.0KB"
