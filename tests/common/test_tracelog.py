"""Trace log behaviour tests."""

import pytest

from repro.common.tracelog import TraceLog


def test_record_and_iterate():
    log = TraceLog()
    log.record(0.0, "job.submit", "j1", file="f")
    log.record(1.0, "task.start.map", "t1")
    assert len(log) == 2
    assert [r.kind for r in log] == ["job.submit", "task.start.map"]


def test_time_must_not_go_backwards():
    log = TraceLog()
    log.record(5.0, "a", "x")
    with pytest.raises(ValueError, match="backwards"):
        log.record(4.0, "b", "y")


def test_equal_times_allowed():
    log = TraceLog()
    log.record(5.0, "a", "x")
    log.record(5.0, "b", "y")
    assert len(log) == 2


def test_filter_by_kind_and_subject():
    log = TraceLog()
    log.record(0.0, "a", "x")
    log.record(1.0, "a", "y")
    log.record(2.0, "b", "x")
    assert len(log.filter(kind="a")) == 2
    assert len(log.filter(subject="x")) == 2
    assert len(log.filter(kind="a", subject="x")) == 1


def test_filter_with_predicate():
    log = TraceLog()
    log.record(0.0, "a", "x", n=1)
    log.record(1.0, "a", "x", n=5)
    heavy = log.filter(predicate=lambda r: r.detail.get("n", 0) > 2)
    assert len(heavy) == 1 and heavy[0].detail["n"] == 5


def test_first_and_last():
    log = TraceLog()
    log.record(0.0, "k", "a")
    log.record(1.0, "k", "b")
    assert log.first("k").subject == "a"
    assert log.last("k").subject == "b"
    assert log.first("missing") is None
    assert log.last("k", subject="a").time == 0.0


def test_dump_renders_and_limits():
    log = TraceLog()
    for i in range(5):
        log.record(float(i), "k", f"s{i}", v=i)
    text = log.dump(limit=2)
    assert "s0" in text and "s1" in text and "s4" not in text


def test_getitem():
    log = TraceLog()
    log.record(0.0, "k", "a")
    assert log[0].subject == "a"


# ------------------------------------------------- tolerance boundary (PR 4)
def test_time_within_tolerance_is_accepted():
    """Float noise up to TIME_TOLERANCE behind the last record is fine."""
    log = TraceLog()
    log.record(1.0, "a", "x")
    log.record(1.0 - TraceLog.TIME_TOLERANCE / 2, "b", "y")
    assert len(log) == 2


def test_time_exactly_at_tolerance_is_accepted():
    log = TraceLog()
    log.record(1.0, "a", "x")
    log.record(1.0 - TraceLog.TIME_TOLERANCE, "b", "y")
    assert len(log) == 2


def test_time_beyond_tolerance_names_the_tolerance():
    log = TraceLog()
    log.record(1.0, "a", "x")
    with pytest.raises(ValueError) as excinfo:
        log.record(1.0 - 10 * TraceLog.TIME_TOLERANCE, "b", "y")
    # The message matches the guard: it rejects only violations beyond
    # the documented tolerance (the old message claimed strictness the
    # guard never enforced).
    assert "tolerance" in str(excinfo.value)
    assert "backwards" in str(excinfo.value)


def test_records_feed_the_underlying_tracer():
    """TraceLog is an adapter: records land on a Tracer as instants."""
    log = TraceLog()
    log.record(2.0, "job.submit", "j1", file="f")
    (event,) = log.tracer.events()
    assert event.phase == "i"
    assert event.ts == 2.0
    assert event.name == "job.submit"
    assert event.subject == "j1"
    assert event.args == {"file": "f"}


def test_adapter_rejects_disabled_tracer():
    from repro.obs import Tracer

    with pytest.raises(ValueError, match="enabled tracer"):
        TraceLog(Tracer(clock=lambda: 0.0, enabled=False))
