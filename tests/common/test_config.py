"""Configuration validation tests."""

import pytest

from repro.common.config import (
    ClusterConfig,
    DfsConfig,
    ExecutionConfig,
    paper_cluster,
    paper_dfs,
)
from repro.common.errors import ConfigError


def test_paper_cluster_defaults():
    config = paper_cluster()
    assert config.num_nodes == 40
    assert config.total_map_slots == 40
    assert sum(config.rack_sizes) == 40
    assert len(config.rack_sizes) == 3


def test_paper_dfs_defaults():
    config = paper_dfs()
    assert config.block_size_mb == 64.0
    assert config.replication == 1


def test_rack_sizes_must_sum_to_nodes():
    with pytest.raises(ConfigError, match="rack_sizes"):
        ClusterConfig(num_nodes=10, rack_sizes=(4, 4))


def test_empty_rack_rejected():
    with pytest.raises(ConfigError):
        ClusterConfig(num_nodes=4, rack_sizes=(4, 0))


def test_node_speeds_length_checked():
    with pytest.raises(ConfigError, match="node_speeds"):
        ClusterConfig(num_nodes=4, rack_sizes=(4,), node_speeds=[1.0, 1.0])


def test_non_positive_speed_rejected():
    with pytest.raises(ConfigError):
        ClusterConfig(num_nodes=2, rack_sizes=(2,), node_speeds=[1.0, 0.0])


def test_non_positive_nodes_rejected():
    with pytest.raises(ConfigError):
        ClusterConfig(num_nodes=0, rack_sizes=())


def test_slot_counts_validated():
    with pytest.raises(ConfigError):
        ClusterConfig(num_nodes=2, rack_sizes=(2,), map_slots_per_node=0)


def test_total_slots_scale_with_slots_per_node():
    config = ClusterConfig(num_nodes=4, rack_sizes=(4,),
                           map_slots_per_node=2, reduce_slots_per_node=3)
    assert config.total_map_slots == 8
    assert config.total_reduce_slots == 12


def test_dfs_block_size_positive():
    with pytest.raises(ConfigError):
        DfsConfig(block_size_mb=0)


def test_dfs_replication_at_least_one():
    with pytest.raises(ConfigError):
        DfsConfig(replication=0)


def test_execution_config_defaults():
    config = ExecutionConfig()
    assert config.map_backend == "serial"
    assert config.map_workers is None


def test_execution_config_validates_backend_name():
    ExecutionConfig(map_backend="processes", map_workers=4)
    with pytest.raises(ConfigError):
        ExecutionConfig(map_backend="gpu")


def test_execution_config_validates_workers():
    with pytest.raises(ConfigError):
        ExecutionConfig(map_workers=0)
