"""Heartbeat progress-report tests."""

from repro.cluster.heartbeat import HeartbeatReport, TaskProgress


def test_progress_linear():
    p = TaskProgress("a", "n0", start_time=10.0, expected_duration=20.0)
    assert p.progress_at(10.0) == 0.0
    assert p.progress_at(20.0) == 0.5
    assert p.progress_at(30.0) == 1.0
    assert p.progress_at(100.0) == 1.0  # clamped


def test_progress_before_start_clamped():
    p = TaskProgress("a", "n0", start_time=10.0, expected_duration=20.0)
    assert p.progress_at(5.0) == 0.0


def test_zero_duration_is_complete():
    p = TaskProgress("a", "n0", start_time=0.0, expected_duration=0.0)
    assert p.progress_at(0.0) == 1.0


def test_estimated_completion_never_past():
    p = TaskProgress("a", "n0", start_time=0.0, expected_duration=10.0)
    assert p.estimated_completion(5.0) == 10.0
    assert p.estimated_completion(15.0) == 15.0  # overdue -> at least now


def test_report_slowest_completion():
    report = HeartbeatReport(
        node_id="n0", time=5.0, free_map_slots=0, free_reduce_slots=1,
        running=(
            TaskProgress("a", "n0", 0.0, 10.0),
            TaskProgress("b", "n0", 2.0, 30.0),
        ))
    assert report.slowest_estimated_completion(5.0) == 32.0


def test_report_idle_has_no_estimate():
    report = HeartbeatReport(node_id="n0", time=0.0,
                             free_map_slots=1, free_reduce_slots=1)
    assert report.slowest_estimated_completion(0.0) is None
