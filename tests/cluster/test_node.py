"""Node slot-accounting tests."""

import pytest

from repro.cluster.node import Node
from repro.common.errors import ConfigError


def make_node(**kwargs) -> Node:
    defaults = dict(node_id="node_000", rack="rack_0")
    defaults.update(kwargs)
    return Node(**defaults)


def test_defaults():
    node = make_node()
    assert node.speed == 1.0
    assert node.free_map_slots == 1
    assert node.free_reduce_slots == 1
    assert node.idle


def test_speed_must_be_positive():
    with pytest.raises(ConfigError):
        make_node(speed=0.0)


def test_negative_slots_rejected():
    with pytest.raises(ConfigError):
        make_node(map_slots=-1)


def test_map_slot_lifecycle():
    node = make_node(map_slots=2)
    node.acquire_map_slot("a")
    assert node.free_map_slots == 1 and not node.idle
    node.acquire_map_slot("b")
    assert node.free_map_slots == 0
    node.release_map_slot("a")
    assert node.free_map_slots == 1
    node.release_map_slot("b")
    assert node.idle


def test_map_overcommit_rejected():
    node = make_node()
    node.acquire_map_slot("a")
    with pytest.raises(ConfigError, match="no free map slot"):
        node.acquire_map_slot("b")


def test_duplicate_attempt_rejected():
    node = make_node(map_slots=2)
    node.acquire_map_slot("a")
    with pytest.raises(ConfigError, match="duplicate"):
        node.acquire_map_slot("a")


def test_release_unknown_attempt_rejected():
    node = make_node()
    with pytest.raises(ConfigError, match="unknown"):
        node.release_map_slot("ghost")


def test_reduce_slots_independent_of_map_slots():
    node = make_node()
    node.acquire_map_slot("m")
    node.acquire_reduce_slot("r")
    assert node.free_map_slots == 0 and node.free_reduce_slots == 0
    node.release_reduce_slot("r")
    assert node.free_reduce_slots == 1 and node.free_map_slots == 0


def test_reduce_overcommit_rejected():
    node = make_node()
    node.acquire_reduce_slot("r1")
    with pytest.raises(ConfigError):
        node.acquire_reduce_slot("r2")


def test_release_unknown_reduce_rejected():
    with pytest.raises(ConfigError):
        make_node().release_reduce_slot("ghost")
