"""Rack topology and distance metric tests."""

import pytest

from repro.cluster.topology import (
    DIST_NODE_LOCAL,
    DIST_OFF_RACK,
    DIST_RACK_LOCAL,
    Topology,
)
from repro.common.errors import ConfigError


@pytest.fixture
def topo() -> Topology:
    return Topology({"n0": "r0", "n1": "r0", "n2": "r1"})


def test_same_node_distance(topo):
    assert topo.distance("n0", "n0") == DIST_NODE_LOCAL


def test_same_rack_distance(topo):
    assert topo.distance("n0", "n1") == DIST_RACK_LOCAL


def test_off_rack_distance(topo):
    assert topo.distance("n0", "n2") == DIST_OFF_RACK


def test_distance_symmetric(topo):
    assert topo.distance("n1", "n2") == topo.distance("n2", "n1")


def test_rack_of_unknown_node(topo):
    with pytest.raises(ConfigError, match="unknown node"):
        topo.rack_of("ghost")


def test_nodes_in_rack_sorted(topo):
    assert topo.nodes_in_rack("r0") == ["n0", "n1"]
    assert topo.nodes_in_rack("r1") == ["n2"]
    assert topo.nodes_in_rack("r9") == []


def test_racks_listing(topo):
    assert topo.racks == ["r0", "r1"]


def test_empty_topology_rejected():
    with pytest.raises(ConfigError):
        Topology({})
