"""Cluster assembly and slot-pool query tests."""

import pytest

from repro.cluster.cluster import Cluster
from repro.common.config import ClusterConfig
from repro.common.errors import ConfigError


@pytest.fixture
def cluster(small_cluster_config) -> Cluster:
    return Cluster.from_config(small_cluster_config)


def test_from_config_builds_all_nodes(cluster):
    assert len(cluster) == 8
    assert cluster.total_map_slots() == 8
    assert cluster.total_reduce_slots() == 8


def test_rack_assignment_follows_config(cluster):
    racks = {cluster.node(nid).rack for nid in cluster.node_ids}
    assert racks == {"rack_0", "rack_1"}
    assert len(cluster.topology.nodes_in_rack("rack_0")) == 4


def test_node_speeds_applied():
    config = ClusterConfig(num_nodes=2, rack_sizes=(2,),
                           node_speeds=[1.0, 0.5])
    cluster = Cluster.from_config(config)
    assert cluster.node("node_001").speed == 0.5


def test_unknown_node_rejected(cluster):
    with pytest.raises(ConfigError):
        cluster.node("node_999")


def test_free_slot_tracking(cluster):
    node = cluster.node("node_000")
    node.acquire_map_slot("a")
    assert cluster.free_map_slots() == 7
    assert len(cluster.nodes_with_free_map_slot()) == 7
    assert all(n.node_id != "node_000"
               for n in cluster.nodes_with_free_map_slot())


def test_exclusions(cluster):
    cluster.set_excluded(["node_001", "node_002"])
    assert len(cluster.available_nodes()) == 6
    assert cluster.free_map_slots(include_excluded=False) == 6
    assert cluster.total_map_slots(include_excluded=False) == 6
    cluster.set_excluded(["node_001"], excluded=False)
    assert len(cluster.available_nodes()) == 7


def test_idle_reflects_running_tasks(cluster):
    assert cluster.idle()
    cluster.node("node_003").acquire_reduce_slot("r")
    assert not cluster.idle()


def test_iteration_order_deterministic(cluster):
    assert [n.node_id for n in cluster] == sorted(cluster.node_ids)


def test_contains(cluster):
    assert "node_000" in cluster
    assert "node_999" not in cluster


def test_duplicate_node_ids_rejected():
    from repro.cluster.node import Node
    from repro.cluster.topology import Topology
    nodes = [Node("n0", "r0"), Node("n0", "r0")]
    with pytest.raises(ConfigError, match="duplicate"):
        Cluster(nodes, Topology({"n0": "r0"}))


def test_empty_cluster_rejected():
    from repro.cluster.topology import Topology
    with pytest.raises(ConfigError):
        Cluster([], Topology({"n0": "r0"}))
