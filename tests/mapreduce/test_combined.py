"""CombinedJob (MRShare batch) tests."""

import pytest

from repro.common.errors import SchedulingError
from repro.mapreduce.combined import make_batch
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import heavy_wordcount, normal_wordcount


def make_jobs(n, file_name="f", profile=None):
    profile = profile or normal_wordcount()
    return [JobSpec(job_id=f"j{i}", file_name=file_name, profile=profile)
            for i in range(n)]


def test_batch_basics():
    batch = make_batch("b0", make_jobs(3))
    assert batch.size == 3
    assert batch.file_name == "f"
    assert batch.job_ids == ("j0", "j1", "j2")


def test_empty_batch_rejected():
    with pytest.raises(SchedulingError):
        make_batch("b0", [])


def test_mixed_files_rejected():
    jobs = make_jobs(2) + [JobSpec(job_id="x", file_name="other",
                                   profile=normal_wordcount())]
    with pytest.raises(SchedulingError, match="different files"):
        make_batch("b0", jobs)


def test_duplicate_members_rejected():
    jobs = make_jobs(2)
    with pytest.raises(SchedulingError, match="duplicate"):
        make_batch("b0", jobs + [jobs[0]])


def test_profile_takes_most_expensive_member():
    jobs = make_jobs(2) + [JobSpec(job_id="h", file_name="f",
                                   profile=heavy_wordcount())]
    batch = make_batch("b0", jobs)
    assert batch.profile.name == "wordcount-heavy"


def test_num_reduce_tasks_is_max():
    light = normal_wordcount().with_(num_reduce_tasks=10)
    jobs = [JobSpec(job_id="a", file_name="f", profile=light),
            JobSpec(job_id="b", file_name="f", profile=normal_wordcount())]
    assert make_batch("b0", jobs).num_reduce_tasks == 30
