"""Workload profile calibration tests (against the paper's published numbers)."""

import pytest

from repro.common.errors import ConfigError
from repro.mapreduce.profile import (
    heavy_wordcount,
    normal_wordcount,
    selection,
)


def test_normal_single_map_task_duration():
    # Table I geometry: 64 waves x 4.2s ~ 269s map phase on 40 slots.
    profile = normal_wordcount()
    assert profile.single_map_task_s(64.0) == pytest.approx(4.2)


def test_normal_profile_matches_fig3_map_ratio():
    """A 10-job combined map task must cost 1.288x a single-job task."""
    profile = normal_wordcount()
    single = profile.single_map_task_s(64.0)
    combined = (profile.task_startup_s + 64.0 / profile.scan_rate_mb_s
                + 64.0 * profile.map_cpu_s_per_mb
                * (1 + profile.map_share_beta * 9))
    assert combined / single == pytest.approx(1.288, abs=1e-3)


def test_normal_profile_matches_fig3_reduce_ratio():
    profile = normal_wordcount()
    assert 1 + profile.reduce_share_gamma * 9 == pytest.approx(1.235, abs=1e-3)


def test_normal_table1_output_volumes():
    profile = normal_wordcount()
    input_mb = 160.0 * 1024
    assert profile.map_output_records_per_mb * input_mb == pytest.approx(250e6)
    assert profile.map_output_mb_per_input_mb * input_mb == pytest.approx(2.4 * 1024)
    assert 60_000 <= profile.reduce_output_records <= 80_000
    assert profile.reduce_output_mb == pytest.approx(1.5)


def test_heavy_profile_scales_outputs():
    normal, heavy = normal_wordcount(), heavy_wordcount()
    assert heavy.map_output_mb_per_input_mb == pytest.approx(
        normal.map_output_mb_per_input_mb * 10)
    assert heavy.reduce_output_mb == pytest.approx(normal.reduce_output_mb * 200)


def test_heavy_profile_is_about_1_5x_slower():
    """Section V.E: heavy jobs take ~1.5x the normal processing time."""
    normal, heavy = normal_wordcount(), heavy_wordcount()
    normal_job = 64 * normal.single_map_task_s(64.0) + normal.reduce_total_s
    heavy_job = 64 * heavy.single_map_task_s(64.0) + heavy.reduce_total_s
    assert heavy_job / normal_job == pytest.approx(1.5, rel=0.1)


def test_heavy_shares_worse_than_normal():
    assert heavy_wordcount().map_share_beta > normal_wordcount().map_share_beta
    assert (heavy_wordcount().reduce_share_gamma
            > normal_wordcount().reduce_share_gamma)


def test_selection_profile_selectivity_bookkeeping():
    profile = selection()
    assert profile.map_output_mb_per_input_mb == pytest.approx(0.10)


def test_selection_shares_worse_than_wordcount():
    """No combiner dedup: combined selection output grows ~linearly."""
    assert selection().map_share_beta > normal_wordcount().map_share_beta


def test_with_returns_modified_copy():
    base = normal_wordcount()
    other = base.with_(reduce_total_s=99.0)
    assert other.reduce_total_s == 99.0
    assert base.reduce_total_s == 16.0
    assert other.scan_rate_mb_s == base.scan_rate_mb_s


@pytest.mark.parametrize("field,value", [
    ("scan_rate_mb_s", 0.0),
    ("map_cpu_s_per_mb", -1.0),
    ("task_startup_s", -0.1),
    ("map_share_beta", -0.5),
    ("reduce_total_s", -1.0),
    ("reduce_share_gamma", -0.1),
    ("num_reduce_tasks", 0),
])
def test_validation(field, value):
    with pytest.raises(ConfigError):
        normal_wordcount().with_(**{field: value})
