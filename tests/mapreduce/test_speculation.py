"""Speculative execution tests (the mechanism the paper disables)."""

import pytest

from repro.common.config import ClusterConfig
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.faults import SpeculationConfig
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.s3 import S3Scheduler


def straggler_cluster(slow_speed=0.2):
    """8 nodes, one painfully slow."""
    speeds = [1.0] * 7 + [slow_speed]
    return ClusterConfig(num_nodes=8, rack_sizes=(4, 4), node_speeds=speeds)


def run(scheduler, *, speculation, small_dfs_config, fast_profile,
        job_factory, blocks=8, slow_speed=0.2):
    driver = SimulationDriver(
        scheduler, cluster_config=straggler_cluster(slow_speed),
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0),
        speculation=speculation)
    driver.register_file("f", 64.0 * blocks)
    driver.submit_all(job_factory(fast_profile, 1), [0.0])
    return driver.run()


@pytest.fixture
def spec_on():
    return SpeculationConfig(enabled=True, check_interval_s=0.5,
                             slowness_factor=1.3, min_completed=3)


def test_disabled_by_default(small_dfs_config, fast_profile, job_factory):
    result = run(FifoScheduler(), speculation=SpeculationConfig(),
                 small_dfs_config=small_dfs_config, fast_profile=fast_profile,
                 job_factory=job_factory)
    assert result.speculative_launched == 0


def test_speculation_launches_backups(spec_on, small_dfs_config, fast_profile,
                                      job_factory):
    result = run(FifoScheduler(), speculation=spec_on,
                 small_dfs_config=small_dfs_config, fast_profile=fast_profile,
                 job_factory=job_factory)
    assert result.all_complete
    assert result.speculative_launched > 0
    assert result.speculative_won > 0
    # The losers were killed, not completed.
    assert len(result.trace.filter(kind="task.killed.map")) > 0


def test_speculation_improves_makespan(spec_on, small_dfs_config,
                                       fast_profile, job_factory):
    base = run(FifoScheduler(), speculation=SpeculationConfig(),
               small_dfs_config=small_dfs_config, fast_profile=fast_profile,
               job_factory=job_factory)
    spec = run(FifoScheduler(), speculation=spec_on,
               small_dfs_config=small_dfs_config, fast_profile=fast_profile,
               job_factory=job_factory)
    assert spec.end_time < base.end_time


def test_speculation_with_s3(spec_on, small_dfs_config, fast_profile,
                             job_factory):
    result = run(S3Scheduler(), speculation=spec_on,
                 small_dfs_config=small_dfs_config, fast_profile=fast_profile,
                 job_factory=job_factory)
    assert result.all_complete
    assert result.speculative_launched > 0


def test_exactly_one_completion_per_task(spec_on, small_dfs_config,
                                         fast_profile, job_factory):
    """Sibling kills never double-complete a task."""
    result = run(FifoScheduler(), speculation=spec_on,
                 small_dfs_config=small_dfs_config, fast_profile=fast_profile,
                 job_factory=job_factory, blocks=24)
    finishes = result.trace.filter(kind="task.finish.map")
    tasks = {r.subject.rsplit(".attempt_", 1)[0] for r in finishes}
    assert len(finishes) == len(tasks) == 24
