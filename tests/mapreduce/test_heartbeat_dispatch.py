"""Heartbeat-driven dispatch mode tests (Hadoop 0.20 semantics)."""

import pytest

from repro.common.errors import SimulationError
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.s3 import S3Scheduler


def run(scheduler, small_cluster_config, small_dfs_config, jobs, arrivals,
        *, mode="heartbeat", interval=1.0, per_beat=2, blocks=16):
    driver = SimulationDriver(
        scheduler, cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0),
        dispatch_mode=mode, heartbeat_interval_s=interval,
        tasks_per_heartbeat=per_beat)
    driver.register_file("f", 64.0 * blocks)
    driver.submit_all(jobs, arrivals)
    return driver.run()


def test_mode_validation(small_cluster_config):
    with pytest.raises(SimulationError, match="dispatch_mode"):
        SimulationDriver(FifoScheduler(), dispatch_mode="bogus")
    with pytest.raises(SimulationError):
        SimulationDriver(FifoScheduler(), dispatch_mode="heartbeat",
                         heartbeat_interval_s=0.0)
    with pytest.raises(SimulationError):
        SimulationDriver(FifoScheduler(), dispatch_mode="heartbeat",
                         tasks_per_heartbeat=0)


@pytest.mark.parametrize("scheduler_factory", [FifoScheduler, S3Scheduler],
                         ids=["fifo", "s3"])
def test_jobs_complete_under_heartbeat_dispatch(scheduler_factory,
                                                small_cluster_config,
                                                small_dfs_config,
                                                fast_profile, job_factory):
    result = run(scheduler_factory(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 2), [0.0, 5.0])
    assert result.all_complete


def test_heartbeat_dispatch_is_slower(small_cluster_config, small_dfs_config,
                                      fast_profile, job_factory):
    """Dispatch latency inflates the makespan vs instant assignment —
    the effect event mode folds into task_startup_s."""
    event = run(FifoScheduler(), small_cluster_config, small_dfs_config,
                job_factory(fast_profile, 1), [0.0], mode="event")
    beat = run(FifoScheduler(), small_cluster_config, small_dfs_config,
               job_factory(fast_profile, 1), [0.0], mode="heartbeat",
               interval=2.0)
    assert beat.end_time > event.end_time


def test_no_task_starts_between_heartbeats(small_cluster_config,
                                           small_dfs_config, fast_profile,
                                           job_factory):
    """Task starts cluster at heartbeat instants (k * interval / n grid)."""
    interval = 1.0
    result = run(FifoScheduler(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 1), [0.0], interval=interval)
    n = 8  # nodes
    for record in result.trace.filter(kind="task.start.map"):
        remainder = (record.time * n / interval) % 1.0
        assert remainder == pytest.approx(0.0, abs=1e-6) or \
            remainder == pytest.approx(1.0, abs=1e-6)


def test_tasks_per_heartbeat_bounds_assignment(small_cluster_config,
                                               small_dfs_config, fast_profile,
                                               job_factory):
    result = run(FifoScheduler(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 1), [0.0], per_beat=1, blocks=24)
    # No node ever received two tasks at the same instant.
    starts: dict[tuple[float, str], int] = {}
    for record in result.trace.filter(kind="task.start.map"):
        key = (record.time, record.detail["node"])
        starts[key] = starts.get(key, 0) + 1
    assert all(count == 1 for count in starts.values())


def test_smaller_interval_faster(small_cluster_config, small_dfs_config,
                                 fast_profile, job_factory):
    slow = run(FifoScheduler(), small_cluster_config, small_dfs_config,
               job_factory(fast_profile, 1), [0.0], interval=3.0)
    fast = run(FifoScheduler(), small_cluster_config, small_dfs_config,
               job_factory(fast_profile, 1), [0.0], interval=0.5)
    assert fast.end_time < slow.end_time


def test_restart_after_idle_gap(small_cluster_config, small_dfs_config,
                                fast_profile, job_factory):
    """Heartbeats stop when all jobs finish and restart on a late arrival."""
    result = run(FifoScheduler(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 2), [0.0, 200.0], blocks=8)
    assert result.all_complete
    assert result.timeline("j1").first_launch >= 200.0
