"""Cost model tests."""

import pytest

from repro.common.errors import ConfigError
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.profile import normal_wordcount


@pytest.fixture
def cost() -> CostModel:
    return CostModel(job_submit_overhead_s=12.0, subjob_overhead_s=0.75)


@pytest.fixture
def profile():
    return normal_wordcount()


def test_map_duration_single(cost, profile):
    assert cost.map_task_duration(profile, 64.0, 1) == pytest.approx(4.2)


def test_map_duration_grows_with_batch(cost, profile):
    durations = [cost.map_task_duration(profile, 64.0, n) for n in (1, 2, 5, 10)]
    assert durations == sorted(durations)
    assert durations[-1] / durations[0] == pytest.approx(1.288, abs=1e-3)


def test_map_duration_scales_with_block(cost, profile):
    small = cost.map_task_duration(profile, 32.0, 1)
    large = cost.map_task_duration(profile, 128.0, 1)
    # Fixed startup means doubling the block less than doubles the task.
    assert large < 4 * small
    assert large > 2 * small


def test_map_duration_node_speed(cost, profile):
    fast = cost.map_task_duration(profile, 64.0, 1, node_speed=2.0)
    slow = cost.map_task_duration(profile, 64.0, 1, node_speed=0.5)
    assert fast == pytest.approx(2.1)
    assert slow == pytest.approx(8.4)


def test_remote_read_penalty(cost, profile):
    local = cost.map_task_duration(profile, 64.0, 1, local=True)
    remote = cost.map_task_duration(profile, 64.0, 1, local=False)
    assert remote - local == pytest.approx(64.0 / cost.link_bandwidth_mb_s)


def test_map_duration_validation(cost, profile):
    with pytest.raises(ConfigError):
        cost.map_task_duration(profile, 64.0, 0)
    with pytest.raises(ConfigError):
        cost.map_task_duration(profile, 0.0, 1)
    with pytest.raises(ConfigError):
        cost.map_task_duration(profile, 64.0, 1, node_speed=0.0)


def test_reduce_duration_full_file(cost, profile):
    assert cost.reduce_task_duration(profile, 1) == pytest.approx(16.0)


def test_reduce_duration_fraction(cost, profile):
    segment = cost.reduce_task_duration(profile, 1, file_fraction=1 / 64)
    assert segment == pytest.approx(16.0 / 64)


def test_reduce_duration_batch_overhead(cost, profile):
    combined = cost.reduce_task_duration(profile, 10)
    assert combined / 16.0 == pytest.approx(1.235, abs=1e-3)


def test_reduce_duration_validation(cost, profile):
    with pytest.raises(ConfigError):
        cost.reduce_task_duration(profile, 0)
    with pytest.raises(ConfigError):
        cost.reduce_task_duration(profile, 1, file_fraction=0.0)
    with pytest.raises(ConfigError):
        cost.reduce_task_duration(profile, 1, file_fraction=1.5)


def test_single_job_makespan_matches_table1(cost, profile):
    """2560 blocks on 40 slots: ~4m45s per job + 12s submission."""
    makespan = cost.single_job_makespan_s(profile, 2560, 64.0, 40)
    assert makespan == pytest.approx(12.0 + 64 * 4.2 + 16.0)
    # The paper reports ~240s of pure processing; we land within 25%.
    assert 240.0 * 0.8 <= makespan - 12.0 <= 240.0 * 1.4


def test_combined_makespan_ratio(cost, profile):
    single = cost.single_job_makespan_s(profile, 2560, 64.0, 40)
    combined = cost.combined_job_makespan_s(profile, 10, 2560, 64.0, 40)
    # Figure 3's headline: ~+25.5% TET for 10 combined jobs.
    assert combined / single == pytest.approx(1.255, abs=0.03)


def test_partial_wave_rounds_up(cost, profile):
    phase = cost.single_job_map_phase_s(profile, 41, 64.0, 40)
    assert phase == pytest.approx(2 * 4.2)


def test_overhead_validation():
    with pytest.raises(ConfigError):
        CostModel(job_submit_overhead_s=-1.0)
    with pytest.raises(ConfigError):
        CostModel(link_bandwidth_mb_s=0.0)
    with pytest.raises(ConfigError):
        CostModel(duration_jitter=-0.1)
