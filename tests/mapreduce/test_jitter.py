"""Task-duration jitter tests (robustness to non-deterministic durations)."""

import pytest

from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.metrics.measures import compute_metrics
from repro.metrics.validate import validate_trace
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.s3 import S3Scheduler


def run(scheduler, small_cluster_config, small_dfs_config, jobs, *,
        jitter=0.0, seed=None, arrivals=None):
    driver = SimulationDriver(
        scheduler, cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0,
                             duration_jitter=jitter),
        jitter_seed=seed)
    driver.register_file("f", 64.0 * 16)
    driver.submit_all(jobs, arrivals or [0.0] * len(jobs))
    return driver.run()


def test_zero_jitter_is_deterministic(small_cluster_config, small_dfs_config,
                                      fast_profile, job_factory):
    a = run(FifoScheduler(), small_cluster_config, small_dfs_config,
            job_factory(fast_profile, 1))
    b = run(FifoScheduler(), small_cluster_config, small_dfs_config,
            job_factory(fast_profile, 1))
    assert a.end_time == b.end_time


def test_jitter_spreads_durations(small_cluster_config, small_dfs_config,
                                  fast_profile, job_factory):
    result = run(FifoScheduler(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 1), jitter=0.2, seed=1)
    durations = {round(r.time, 6)
                 for r in result.trace.filter(kind="task.finish.map")}
    # Without jitter every wave finishes simultaneously; with it they spread.
    assert len(durations) > 4


def test_jitter_deterministic_per_seed(small_cluster_config, small_dfs_config,
                                       fast_profile, job_factory):
    a = run(S3Scheduler(), small_cluster_config, small_dfs_config,
            job_factory(fast_profile, 2), jitter=0.15, seed=7)
    b = run(S3Scheduler(), small_cluster_config, small_dfs_config,
            job_factory(fast_profile, 2), jitter=0.15, seed=7)
    c = run(S3Scheduler(), small_cluster_config, small_dfs_config,
            job_factory(fast_profile, 2), jitter=0.15, seed=8)
    assert a.end_time == b.end_time
    assert a.end_time != c.end_time


@pytest.mark.parametrize("scheduler_factory", [FifoScheduler, S3Scheduler],
                         ids=["fifo", "s3"])
def test_jittered_runs_stay_valid(scheduler_factory, small_cluster_config,
                                  small_dfs_config, fast_profile,
                                  job_factory):
    result = run(scheduler_factory(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 3), jitter=0.25, seed=3,
                 arrivals=[0.0, 1.0, 2.0])
    assert result.all_complete
    validate_trace(result.trace, small_cluster_config).raise_if_invalid()


def test_jitter_perturbs_metrics_modestly(small_cluster_config,
                                          small_dfs_config, fast_profile,
                                          job_factory):
    base = run(S3Scheduler(), small_cluster_config, small_dfs_config,
               job_factory(fast_profile, 2))
    noisy = run(S3Scheduler(), small_cluster_config, small_dfs_config,
                job_factory(fast_profile, 2), jitter=0.1, seed=5)
    base_m = compute_metrics("S3", base.timelines)
    noisy_m = compute_metrics("S3", noisy.timelines)
    assert noisy_m.tet == pytest.approx(base_m.tet, rel=0.3)
    assert noisy_m.tet != base_m.tet
