"""JobSpec / JobTimeline tests."""

import pytest

from repro.common.errors import ConfigError
from repro.mapreduce.job import JobSpec, JobTimeline
from repro.mapreduce.profile import normal_wordcount


def test_spec_validation():
    with pytest.raises(ConfigError):
        JobSpec(job_id="", file_name="f", profile=normal_wordcount())
    with pytest.raises(ConfigError):
        JobSpec(job_id="j", file_name="", profile=normal_wordcount())


def test_spec_reduce_tasks_from_profile():
    spec = JobSpec(job_id="j", file_name="f", profile=normal_wordcount())
    assert spec.num_reduce_tasks == 30


def test_timeline_response_and_waiting():
    t = JobTimeline(job_id="j", submitted=10.0, first_launch=15.0,
                    completed=100.0)
    assert t.response_time == 90.0
    assert t.waiting_time == 5.0
    assert t.is_complete


def test_timeline_incomplete_raises():
    t = JobTimeline(job_id="j", submitted=0.0)
    assert not t.is_complete
    with pytest.raises(ConfigError):
        _ = t.response_time
    with pytest.raises(ConfigError):
        _ = t.waiting_time
