"""Fault injection: task failures, node outages, retry accounting."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.faults import FaultModel, Outage, SpeculationConfig
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.mrshare import MRShareScheduler
from repro.schedulers.s3 import S3Scheduler


def run_with_faults(scheduler, fault_model, small_cluster_config,
                    small_dfs_config, fast_profile, job_factory,
                    blocks=16, num_jobs=2, arrivals=None):
    driver = SimulationDriver(
        scheduler, cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0),
        fault_model=fault_model)
    driver.register_file("f", 64.0 * blocks)
    driver.submit_all(job_factory(fast_profile, num_jobs),
                      arrivals or [0.0] * num_jobs)
    return driver.run()


# -------------------------------------------------------------- validation
def test_fault_model_validation():
    with pytest.raises(ConfigError):
        FaultModel(task_failure_prob=1.0)
    with pytest.raises(ConfigError):
        FaultModel(task_failure_prob=-0.1)
    with pytest.raises(ConfigError):
        FaultModel(max_attempts=0)
    with pytest.raises(ConfigError):
        Outage("n0", start=-1.0, duration=5.0)
    with pytest.raises(ConfigError):
        SpeculationConfig(check_interval_s=0.0)
    with pytest.raises(ConfigError):
        SpeculationConfig(slowness_factor=1.0)


def test_sample_failure_rates():
    model = FaultModel(task_failure_prob=0.5, seed=1)
    samples = [model.sample_failure() for _ in range(400)]
    failures = [s for s in samples if s is not None]
    assert 120 <= len(failures) <= 280
    assert all(0.0 < f < 1.0 for f in failures)
    assert not FaultModel().has_faults
    assert FaultModel(task_failure_prob=0.1).has_faults


# --------------------------------------------------- retries per scheduler
@pytest.mark.parametrize("scheduler_factory", [
    FifoScheduler,
    lambda: MRShareScheduler.single_batch(2),
    S3Scheduler,
], ids=["fifo", "mrshare", "s3"])
def test_jobs_survive_task_failures(scheduler_factory, small_cluster_config,
                                    small_dfs_config, fast_profile,
                                    job_factory):
    faults = FaultModel(task_failure_prob=0.15, max_attempts=25, seed=7)
    result = run_with_faults(scheduler_factory(), faults,
                             small_cluster_config, small_dfs_config,
                             fast_profile, job_factory, blocks=24)
    assert result.all_complete
    assert result.task_failures > 0
    assert len(result.trace.filter(kind="task.fail.map")) \
        + len(result.trace.filter(kind="task.fail.reduce")) \
        == result.task_failures


def test_failures_extend_completion_time(small_cluster_config,
                                         small_dfs_config, fast_profile,
                                         job_factory):
    clean = run_with_faults(FifoScheduler(), None, small_cluster_config,
                            small_dfs_config, fast_profile, job_factory)
    faulty = run_with_faults(FifoScheduler(),
                             FaultModel(task_failure_prob=0.3,
                                        max_attempts=50, seed=3),
                             small_cluster_config, small_dfs_config,
                             fast_profile, job_factory)
    assert faulty.end_time > clean.end_time


def test_max_attempts_enforced(small_cluster_config, small_dfs_config,
                               fast_profile, job_factory):
    # Extremely failure-prone tasks with a tight retry budget must abort.
    faults = FaultModel(task_failure_prob=0.95, max_attempts=2, seed=5)
    with pytest.raises(SimulationError, match="max_attempts"):
        run_with_faults(FifoScheduler(), faults, small_cluster_config,
                        small_dfs_config, fast_profile, job_factory)


def test_scheduler_without_retry_support_refuses(small_cluster_config,
                                                 small_dfs_config,
                                                 fast_profile, job_factory):
    """The base Scheduler rejects failures rather than silently hanging."""
    from repro.common.errors import SchedulingError
    from repro.mapreduce.driver import Scheduler

    class NoRetry(FifoScheduler):
        on_task_failed = Scheduler.on_task_failed

    faults = FaultModel(task_failure_prob=0.9, max_attempts=10, seed=2)
    with pytest.raises(SchedulingError, match="does not implement retry"):
        run_with_faults(NoRetry(), faults, small_cluster_config,
                        small_dfs_config, fast_profile, job_factory)


# ------------------------------------------------------------------ outages
def test_outage_fails_running_tasks_and_recovers(small_cluster_config,
                                                 small_dfs_config,
                                                 fast_profile, job_factory):
    faults = FaultModel(outages=(Outage("node_000", start=0.5, duration=3.0),),
                        seed=1)
    result = run_with_faults(S3Scheduler(), faults, small_cluster_config,
                             small_dfs_config, fast_profile, job_factory,
                             blocks=24)
    assert result.all_complete
    assert result.trace.first("node.offline", "node_000") is not None
    assert result.trace.first("node.online", "node_000") is not None
    # The attempt running on node_000 at t=0.5 was failed.
    assert result.task_failures >= 1


def test_no_tasks_scheduled_during_outage(small_cluster_config,
                                          small_dfs_config, fast_profile,
                                          job_factory):
    faults = FaultModel(outages=(Outage("node_003", start=0.0, duration=100.0),))
    result = run_with_faults(FifoScheduler(), faults, small_cluster_config,
                             small_dfs_config, fast_profile, job_factory,
                             blocks=16, num_jobs=1)
    offline_window_starts = [
        r for r in result.trace.filter(kind="task.start.map")
        if r.detail["node"] == "node_003" and r.time < 100.0]
    assert not offline_window_starts


def test_outage_of_unknown_node_rejected(small_cluster_config,
                                         small_dfs_config, fast_profile,
                                         job_factory):
    faults = FaultModel(outages=(Outage("ghost", start=1.0, duration=1.0),))
    with pytest.raises(SimulationError, match="unknown node"):
        run_with_faults(FifoScheduler(), faults, small_cluster_config,
                        small_dfs_config, fast_profile, job_factory)
