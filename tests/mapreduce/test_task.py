"""TaskLaunch / LocalityStats tests."""

import pytest

from repro.mapreduce.task import LocalityStats, TaskKind, TaskLaunch


def make_launch(**kwargs):
    defaults = dict(attempt_id="a", kind=TaskKind.MAP, node_id="n0",
                    duration=1.0, job_ids=("j1",))
    defaults.update(kwargs)
    return TaskLaunch(**defaults)


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        make_launch(duration=-1.0)


def test_no_jobs_rejected():
    with pytest.raises(ValueError):
        make_launch(job_ids=())


def test_batch_size():
    assert make_launch(job_ids=("a", "b", "c")).batch_size == 3


def test_locality_stats_counts_maps_only():
    stats = LocalityStats()
    stats.observe(make_launch(local=True))
    stats.observe(make_launch(local=False))
    stats.observe(make_launch(kind=TaskKind.REDUCE, local=False))
    assert stats.local == 1
    assert stats.remote == 1
    assert stats.total == 2
    assert stats.locality_rate == 0.5


def test_locality_rate_empty_is_one():
    assert LocalityStats().locality_rate == 1.0
