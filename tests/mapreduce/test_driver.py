"""Simulation driver tests, using the FIFO scheduler as the workhorse."""

import pytest

from repro.common.errors import SimulationError
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.mapreduce.job import JobSpec
from repro.schedulers.fifo import FifoScheduler


def make_driver(small_cluster_config, small_dfs_config, cost=None):
    return SimulationDriver(FifoScheduler(),
                            cluster_config=small_cluster_config,
                            dfs_config=small_dfs_config,
                            cost_model=cost or CostModel(
                                job_submit_overhead_s=0.0))


def test_single_job_runs_to_completion(small_cluster_config, small_dfs_config,
                                       fast_profile, job_factory):
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0 * 16)  # 16 blocks, 8 slots -> 2 waves
    driver.submit_all(job_factory(fast_profile, 1), [0.0])
    result = driver.run()
    assert result.all_complete
    timeline = result.timeline("j0")
    assert timeline.submitted == 0.0
    assert timeline.first_launch == 0.0
    # 2 waves x ~1.6s map + 2s reduce
    assert timeline.completed == pytest.approx(2 * 1.6 + 2.0, abs=0.2)


def test_submit_unregistered_file_rejected(small_cluster_config,
                                           small_dfs_config, fast_profile):
    driver = make_driver(small_cluster_config, small_dfs_config)
    with pytest.raises(SimulationError, match="not registered"):
        driver.submit(JobSpec(job_id="j", file_name="ghost",
                              profile=fast_profile), 0.0)


def test_duplicate_job_id_rejected(small_cluster_config, small_dfs_config,
                                   fast_profile, job_factory):
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0)
    jobs = job_factory(fast_profile, 1)
    driver.submit(jobs[0], 0.0)
    with pytest.raises(SimulationError, match="duplicate"):
        driver.submit(jobs[0], 1.0)


def test_negative_arrival_rejected(small_cluster_config, small_dfs_config,
                                   fast_profile, job_factory):
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0)
    with pytest.raises(SimulationError):
        driver.submit(job_factory(fast_profile, 1)[0], -1.0)


def test_mismatched_submit_all(small_cluster_config, small_dfs_config,
                               fast_profile, job_factory):
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0)
    with pytest.raises(SimulationError, match="equal length"):
        driver.submit_all(job_factory(fast_profile, 2), [0.0])


def test_run_twice_rejected(small_cluster_config, small_dfs_config,
                            fast_profile, job_factory):
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0)
    driver.submit_all(job_factory(fast_profile, 1), [0.0])
    driver.run()
    with pytest.raises(SimulationError, match="already ran"):
        driver.run()


def test_submit_after_run_rejected(small_cluster_config, small_dfs_config,
                                   fast_profile, job_factory):
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0)
    jobs = job_factory(fast_profile, 2)
    driver.submit(jobs[0], 0.0)
    driver.run()
    with pytest.raises(SimulationError):
        driver.submit(jobs[1], 0.0)


def test_trace_records_lifecycle(small_cluster_config, small_dfs_config,
                                 fast_profile, job_factory):
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0 * 4)
    driver.submit_all(job_factory(fast_profile, 1), [0.0])
    result = driver.run()
    assert result.trace.first("job.submit", "j0") is not None
    assert len(result.trace.filter(kind="task.start.map")) == 4
    assert len(result.trace.filter(kind="task.finish.map")) == 4
    assert len(result.trace.filter(kind="task.start.reduce")) == 4
    assert result.trace.last("job.complete", "j0") is not None


def test_locality_with_round_robin_placement(small_cluster_config,
                                             small_dfs_config, fast_profile,
                                             job_factory):
    """One block per node + one slot per node: every map can be local."""
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0 * 8)
    driver.submit_all(job_factory(fast_profile, 1), [0.0])
    result = driver.run()
    assert result.locality.locality_rate == 1.0


def test_slots_respected(small_cluster_config, small_dfs_config,
                         fast_profile, job_factory):
    """Never more concurrent maps than cluster slots (validated by Node)."""
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0 * 40)
    driver.submit_all(job_factory(fast_profile, 2), [0.0, 1.0])
    result = driver.run()  # Node.acquire raises on overcommit
    assert result.all_complete


def test_job_arrival_later_starts_later(small_cluster_config, small_dfs_config,
                                        fast_profile, job_factory):
    driver = make_driver(small_cluster_config, small_dfs_config)
    driver.register_file("f", 64.0 * 8)
    driver.submit_all(job_factory(fast_profile, 1), [100.0])
    result = driver.run()
    assert result.timeline("j0").first_launch == 100.0
    assert result.end_time > 100.0
