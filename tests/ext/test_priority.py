"""Priority-admission extension tests (Section VI future work)."""

import pytest

from repro.common.errors import ExperimentError
from repro.ext.priority import run_priority_demo


@pytest.fixture(scope="module")
def outcome():
    return run_priority_demo(num_per_class=2, cap=2)


def test_priority_classes_ordered(outcome):
    """Higher priority -> lower (or equal) mean response time."""
    assert outcome.respects_priority
    assert outcome.art_by_priority[2] < outcome.art_by_priority[0]


def test_all_classes_measured(outcome):
    assert set(outcome.art_by_priority) == {0, 1, 2}
    assert all(v > 0 for v in outcome.art_by_priority.values())


def test_validation():
    with pytest.raises(ExperimentError):
        run_priority_demo(num_per_class=0)
    with pytest.raises(ExperimentError):
        run_priority_demo(cap=0)
