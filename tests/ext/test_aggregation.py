"""Section V.G output-collection extension tests."""

import pytest

from repro.ext.aggregation import compare_collection_schemes, fold_partial_aggregates
from repro.localrt.engine import JobRunState, count_pending_values, run_map_on_block
from repro.localrt.jobs import aggregation_job, wordcount_job
from repro.localrt.records import DelimitedReader, TextLineReader
from repro.localrt.storage import BlockStore
from repro.workloads.tpch import LINEITEM_COLUMNS, LineitemGenerator


@pytest.fixture(scope="module")
def lineitem_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("agg-lineitem")
    return BlockStore.create(directory,
                             LineitemGenerator(seed=11).rows_for_bytes(90_000),
                             block_size_bytes=12_000)


@pytest.fixture
def reader():
    return DelimitedReader("|", len(LINEITEM_COLUMNS))


def test_fold_collapses_to_one_value_per_key():
    state = JobRunState(wordcount_job("w", ".*"))
    run_map_on_block([state], TextLineReader(), "x x y\nx y z\n")
    # The combiner already collapsed within the block; add a second block.
    run_map_on_block([state], TextLineReader(), "x z z\n")
    assert count_pending_values(state) > 3
    fold_partial_aggregates([state])
    assert count_pending_values(state) == 3  # one partial per distinct key


def test_fold_skips_jobs_without_combiner():
    state = JobRunState(wordcount_job("w", ".*", use_combiner=False))
    run_map_on_block([state], TextLineReader(), "x x y\n")
    before = count_pending_values(state)
    fold_partial_aggregates([state])
    assert count_pending_values(state) == before


def test_progressive_scheme_matches_at_end(lineitem_store, reader):
    comparison = compare_collection_schemes(
        lineitem_store, lambda: [aggregation_job("agg")],
        reader=reader, blocks_per_segment=2)
    assert comparison.outputs_match()


def test_progressive_scheme_shrinks_final_merge(lineitem_store, reader):
    comparison = compare_collection_schemes(
        lineitem_store, lambda: [aggregation_job("agg")],
        reader=reader, blocks_per_segment=2)
    reduction = comparison.final_merge_reduction("agg")
    assert reduction > 0.5  # progressive folding removes most of the merge


def test_staggered_arrivals_still_match(lineitem_store, reader):
    comparison = compare_collection_schemes(
        lineitem_store,
        lambda: [aggregation_job("a"), aggregation_job("b")],
        reader=reader, blocks_per_segment=2,
        arrival_iterations={"b": 2})
    assert comparison.outputs_match()
    assert comparison.final_merge_reduction("b") > 0.0
