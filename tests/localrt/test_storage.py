"""Block store tests."""

import threading

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.cache import BlockCache
from repro.localrt.storage import BlockStore, ReadStats


def lines(n, width=20):
    return [f"line {i:04d} ".ljust(width, "x") for i in range(n)]


def test_create_and_reload(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(100), block_size_bytes=210)
    assert store.num_blocks > 1
    reloaded = BlockStore(tmp_path / "s")
    assert reloaded.num_blocks == store.num_blocks
    assert reloaded.total_bytes == store.total_bytes


def test_blocks_are_line_aligned(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(50), block_size_bytes=97)
    for index in range(store.num_blocks):
        assert store.read_block(index).endswith("\n")


def test_content_round_trip(tmp_path):
    data = lines(37)
    store = BlockStore.create(tmp_path / "s", data, block_size_bytes=100)
    joined = "".join(store.read_block(i) for i in range(store.num_blocks))
    assert joined.splitlines() == data


def test_read_stats_accumulate(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(20), block_size_bytes=100)
    store.read_block(0)
    store.read_block(0)
    assert store.stats.blocks_read == 2
    assert store.stats.bytes_read == 2 * store.block_size_bytes(0)
    store.reset_stats()
    assert store.stats.blocks_read == 0


def test_block_offsets_monotonic(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(60), block_size_bytes=150)
    offsets = [store.block_offset(i) for i in range(store.num_blocks)]
    assert offsets[0] == 0
    assert offsets == sorted(offsets)
    assert (offsets[-1] + store.block_size_bytes(store.num_blocks - 1)
            == store.total_bytes)


def test_iter_blocks(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(10), block_size_bytes=80)
    seen = list(store.iter_blocks())
    assert [i for i, _ in seen] == list(range(store.num_blocks))


def test_out_of_range_rejected(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(5), block_size_bytes=500)
    with pytest.raises(ExecutionError):
        store.read_block(99)


def test_create_on_existing_rejected(tmp_path):
    BlockStore.create(tmp_path / "s", lines(5), block_size_bytes=500)
    with pytest.raises(ExecutionError, match="already contains"):
        BlockStore.create(tmp_path / "s", lines(5), block_size_bytes=500)


def test_create_empty_rejected(tmp_path):
    with pytest.raises(ExecutionError):
        BlockStore.create(tmp_path / "s", [], block_size_bytes=100)


def test_newline_in_input_rejected(tmp_path):
    with pytest.raises(ExecutionError, match="newline"):
        BlockStore.create(tmp_path / "s", ["bad\nline"], block_size_bytes=100)


def test_open_missing_dir_rejected(tmp_path):
    with pytest.raises(ExecutionError):
        BlockStore(tmp_path / "missing")


def test_invalid_block_size(tmp_path):
    with pytest.raises(ExecutionError):
        BlockStore.create(tmp_path / "s", lines(5), block_size_bytes=0)


def test_non_ascii_lines_round_trip_as_utf8(tmp_path):
    data = ["héllo wörld", "naïve café", "日本語のテキスト", "plain ascii"]
    store = BlockStore.create(tmp_path / "s", data, block_size_bytes=40)
    joined = "".join(store.read_block(i) for i in range(store.num_blocks))
    assert joined.splitlines() == data
    # Counters measure on-disk bytes (UTF-8), not characters.
    encoded = sum(len((line + "\n").encode("utf-8")) for line in data)
    assert store.total_bytes == encoded
    store.reset_stats()
    for i in range(store.num_blocks):
        store.read_block(i)
    assert store.stats.bytes_read == encoded


def test_unencodable_line_raises_by_name(tmp_path):
    bad = "lone surrogate \ud800 here"
    with pytest.raises(ExecutionError, match="UTF-8"):
        BlockStore.create(tmp_path / "s", ["fine", bad], block_size_bytes=100)


def test_block_sizes_are_cached_at_open(tmp_path):
    """Satellite: block_size_bytes must not stat() per call — sizes are
    captured once at open, so they survive even file deletion."""
    store = BlockStore.create(tmp_path / "s", lines(40), block_size_bytes=120)
    sizes = [store.block_size_bytes(i) for i in range(store.num_blocks)]
    for path in sorted((tmp_path / "s").glob("block_*.dat")):
        path.unlink()
    assert [store.block_size_bytes(i)
            for i in range(store.num_blocks)] == sizes
    assert sum(sizes) == store.total_bytes


def test_iter_blocks_counter_accounting(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(50), block_size_bytes=150)
    consumed = list(store.iter_blocks())
    assert store.stats.blocks_read == store.num_blocks
    assert store.stats.bytes_read == store.total_bytes
    assert store.stats.physical_blocks_read == store.num_blocks
    assert store.stats.bytes_read == sum(len(text.encode("utf-8"))
                                         for _, text in consumed)
    # A second pass doubles the logical counters (no cache attached).
    list(store.iter_blocks())
    assert store.stats.blocks_read == 2 * store.num_blocks
    assert store.stats.bytes_read == 2 * store.total_bytes


@pytest.mark.parametrize("with_cache", [False, True])
def test_read_block_concurrent_threads_accounting(tmp_path, with_cache):
    """The _stats_lock path: hammer read_block from many threads and
    check the logical counters add up exactly."""
    cache = BlockCache(10_000_000) if with_cache else None
    store = BlockStore.create(tmp_path / "s", lines(80), block_size_bytes=200,
                              cache=cache)
    reads_per_thread = 50
    n_threads = 8
    errors = []

    def hammer(seed):
        try:
            for i in range(reads_per_thread):
                index = (seed + i) % store.num_blocks
                text = store.read_block(index)
                assert len(text.encode("utf-8")) == store.block_size_bytes(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(s,))
               for s in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    total = n_threads * reads_per_thread
    assert store.stats.blocks_read == total
    expected_bytes = sum(
        store.block_size_bytes((s + i) % store.num_blocks)
        for s in range(n_threads) for i in range(reads_per_thread))
    assert store.stats.bytes_read == expected_bytes
    if with_cache:
        assert store.stats.cache_hits + store.stats.cache_misses == total
        assert store.stats.physical_blocks_read < total
    else:
        assert store.stats.physical_blocks_read == total


def test_note_external_read_counts_logical_and_physical(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(10), block_size_bytes=100)
    store.note_external_read(blocks=3, nbytes=300)
    assert store.stats.blocks_read == 3
    assert store.stats.bytes_read == 300
    assert store.stats.physical_blocks_read == 3
    assert store.stats.physical_bytes_read == 300
    with pytest.raises(ExecutionError):
        store.note_external_read(blocks=-1, nbytes=0)


def test_read_stats_snapshot_and_delta():
    stats = ReadStats(blocks_read=10, bytes_read=100, cache_hits=4)
    before = stats.snapshot()
    stats.blocks_read += 5
    stats.cache_hits += 2
    delta = stats.delta(before)
    assert delta.blocks_read == 5
    assert delta.cache_hits == 2
    assert delta.bytes_read == 0
    assert before.blocks_read == 10    # snapshot is independent
    stats.reset()
    assert stats.blocks_read == 0 and stats.cache_hits == 0


def test_cache_hit_ratio_zero_without_lookups():
    assert ReadStats().cache_hit_ratio == 0.0


# ------------------------------------------------- zero-copy bytes path

def test_read_block_bytes_matches_text_path(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(40), block_size_bytes=150)
    for index in range(store.num_blocks):
        raw = store.read_block_bytes(index)
        assert isinstance(raw, bytes)
        assert raw == store.read_block(index).encode("utf-8")
        assert len(raw) == store.block_size_bytes(index)


def test_read_block_bytes_counter_accounting(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(30), block_size_bytes=120)
    store.read_block_bytes(0)
    store.read_block_bytes(1)
    store.read_block(0)
    # Logical counters are charged identically on both paths;
    # bytes_blocks_read singles out the raw-bytes reads.
    assert store.stats.blocks_read == 3
    assert store.stats.bytes_blocks_read == 2
    assert store.stats.bytes_read == (2 * store.block_size_bytes(0)
                                      + store.block_size_bytes(1))


def test_mmap_path_used_and_counted(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(20), block_size_bytes=100)
    data = store.read_block_bytes(0)
    assert data  # sanity: mappable non-empty file
    assert store.stats.mmap_blocks_read == store.stats.physical_blocks_read


def test_mmap_fallback_returns_identical_bytes(tmp_path, monkeypatch):
    """Hosts without usable mmap silently take the plain-read path —
    same bytes, same logical/physical counters, mmap counter stays 0."""
    store = BlockStore.create(tmp_path / "s", lines(40), block_size_bytes=150)
    mapped = [store.read_block_bytes(i) for i in range(store.num_blocks)]
    mapped_stats = store.stats.snapshot()
    store.reset_stats()

    import repro.localrt.storage as storage_module

    def broken_mmap(*args, **kwargs):
        raise OSError("mmap unavailable on this host")

    monkeypatch.setattr(storage_module.mmap, "mmap", broken_mmap)
    fallback = [store.read_block_bytes(i) for i in range(store.num_blocks)]
    assert fallback == mapped
    assert store.stats.mmap_blocks_read == 0
    assert mapped_stats.mmap_blocks_read == store.num_blocks
    assert store.stats.blocks_read == mapped_stats.blocks_read
    assert store.stats.bytes_read == mapped_stats.bytes_read
    assert (store.stats.physical_blocks_read
            == mapped_stats.physical_blocks_read)
    assert store.stats.bytes_blocks_read == mapped_stats.bytes_blocks_read


def test_cache_stores_raw_bytes_with_exact_sizes(tmp_path):
    cache = BlockCache(10_000_000)
    store = BlockStore.create(tmp_path / "s", lines(30), block_size_bytes=120,
                              cache=cache)
    # The text path populates the cache with *bytes* (decoding happens in
    # the read_block shim), so both paths share residency.
    text = store.read_block(0)
    raw = store.read_block_bytes(0)
    assert raw == text.encode("utf-8")
    assert store.stats.cache_hits == 1
    assert store.stats.cache_misses == 1
    # Byte accounting is the exact on-disk size, no object overhead.
    assert cache.current_bytes == store.block_size_bytes(0)
    # A cached block is returned as the resident object (zero-copy).
    assert store.read_block_bytes(0) is raw


def test_note_external_read_mirrors_bytes_blocks(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(10), block_size_bytes=100)
    store.note_external_read(blocks=4, nbytes=400, bytes_blocks=3)
    assert store.stats.blocks_read == 4
    assert store.stats.bytes_blocks_read == 3
    with pytest.raises(ExecutionError, match="cannot exceed"):
        store.note_external_read(blocks=1, nbytes=10, bytes_blocks=2)
    with pytest.raises(ExecutionError, match="non-negative"):
        store.note_external_read(blocks=1, nbytes=10, bytes_blocks=-1)
