"""Block store tests."""

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.storage import BlockStore


def lines(n, width=20):
    return [f"line {i:04d} ".ljust(width, "x") for i in range(n)]


def test_create_and_reload(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(100), block_size_bytes=210)
    assert store.num_blocks > 1
    reloaded = BlockStore(tmp_path / "s")
    assert reloaded.num_blocks == store.num_blocks
    assert reloaded.total_bytes == store.total_bytes


def test_blocks_are_line_aligned(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(50), block_size_bytes=97)
    for index in range(store.num_blocks):
        assert store.read_block(index).endswith("\n")


def test_content_round_trip(tmp_path):
    data = lines(37)
    store = BlockStore.create(tmp_path / "s", data, block_size_bytes=100)
    joined = "".join(store.read_block(i) for i in range(store.num_blocks))
    assert joined.splitlines() == data


def test_read_stats_accumulate(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(20), block_size_bytes=100)
    store.read_block(0)
    store.read_block(0)
    assert store.stats.blocks_read == 2
    assert store.stats.bytes_read == 2 * store.block_size_bytes(0)
    store.stats.reset()
    assert store.stats.blocks_read == 0


def test_block_offsets_monotonic(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(60), block_size_bytes=150)
    offsets = [store.block_offset(i) for i in range(store.num_blocks)]
    assert offsets[0] == 0
    assert offsets == sorted(offsets)
    assert (offsets[-1] + store.block_size_bytes(store.num_blocks - 1)
            == store.total_bytes)


def test_iter_blocks(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(10), block_size_bytes=80)
    seen = list(store.iter_blocks())
    assert [i for i, _ in seen] == list(range(store.num_blocks))


def test_out_of_range_rejected(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(5), block_size_bytes=500)
    with pytest.raises(ExecutionError):
        store.read_block(99)


def test_create_on_existing_rejected(tmp_path):
    BlockStore.create(tmp_path / "s", lines(5), block_size_bytes=500)
    with pytest.raises(ExecutionError, match="already contains"):
        BlockStore.create(tmp_path / "s", lines(5), block_size_bytes=500)


def test_create_empty_rejected(tmp_path):
    with pytest.raises(ExecutionError):
        BlockStore.create(tmp_path / "s", [], block_size_bytes=100)


def test_newline_in_input_rejected(tmp_path):
    with pytest.raises(ExecutionError, match="newline"):
        BlockStore.create(tmp_path / "s", ["bad\nline"], block_size_bytes=100)


def test_open_missing_dir_rejected(tmp_path):
    with pytest.raises(ExecutionError):
        BlockStore(tmp_path / "missing")


def test_invalid_block_size(tmp_path):
    with pytest.raises(ExecutionError):
        BlockStore.create(tmp_path / "s", lines(5), block_size_bytes=0)
