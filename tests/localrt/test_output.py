"""Part-file output materialisation tests."""

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.api import JobResult
from repro.localrt.output import SUCCESS_MARKER, read_output, write_output


def make_result():
    return JobResult(job_id="j", output=[("apple", 3), ("pear", 1),
                                         ("plum", 2)])


def test_write_creates_parts_and_marker(tmp_path):
    paths = write_output(make_result(), tmp_path / "out", num_partitions=3)
    assert len(paths) == 3
    assert all(p.exists() for p in paths)
    assert (tmp_path / "out" / SUCCESS_MARKER).exists()


def test_round_trip(tmp_path):
    write_output(make_result(), tmp_path / "out", num_partitions=3)
    records = dict(read_output(tmp_path / "out"))
    assert records == {"apple": "3", "pear": "1", "plum": "2"}


def test_partitioning_is_stable(tmp_path):
    from repro.localrt.api import default_partitioner
    write_output(make_result(), tmp_path / "out", num_partitions=4)
    for partition in range(4):
        path = tmp_path / "out" / f"part-{partition:05d}"
        for line in path.read_text().splitlines():
            key = line.split("\t")[0]
            assert default_partitioner(key, 4) == partition


def test_empty_partitions_still_written(tmp_path):
    result = JobResult(job_id="j", output=[("a", 1)])
    paths = write_output(result, tmp_path / "out", num_partitions=8)
    assert len(paths) == 8


def test_double_write_rejected(tmp_path):
    write_output(make_result(), tmp_path / "out")
    with pytest.raises(ExecutionError, match="already holds"):
        write_output(make_result(), tmp_path / "out")


def test_read_without_success_marker_rejected(tmp_path):
    (tmp_path / "partial").mkdir()
    (tmp_path / "partial" / "part-00000").write_text("a\t1\n")
    with pytest.raises(ExecutionError, match="_SUCCESS"):
        read_output(tmp_path / "partial")


def test_invalid_partitions(tmp_path):
    with pytest.raises(ExecutionError):
        write_output(make_result(), tmp_path / "out", num_partitions=0)


def test_real_job_output_round_trip(tmp_path, corpus_store):
    from repro.localrt.jobs import wordcount_job
    from repro.localrt.runners import FifoLocalRunner

    report = FifoLocalRunner(corpus_store).run([wordcount_job("wc", "^b.*")])
    write_output(report.results["wc"], tmp_path / "wc-out")
    restored = {k: int(v) for k, v in read_output(tmp_path / "wc-out")}
    assert restored == dict(report.results["wc"].output)
