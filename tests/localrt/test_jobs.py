"""Ready-made local job tests (wordcount, selection, aggregation)."""

import pytest

import repro.localrt.jobs as jobs_module
from repro.common.errors import ExecutionError
from repro.localrt.api import BlockData
from repro.localrt.jobs import (
    PatternWordCount,
    PatternWordCountBlock,
    SelectionBlockMapper,
    aggregation_job,
    selection_job,
    wordcount_job,
)
from repro.localrt.records import DelimitedReader, TextLineReader
from repro.localrt.runners import FifoLocalRunner
from repro.localrt.storage import BlockStore
from repro.workloads.tpch import (
    LINEITEM_COLUMNS,
    LineitemGenerator,
    quantity_threshold_for_selectivity,
)


@pytest.fixture(scope="module")
def lineitem_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lineitem")
    generator = LineitemGenerator(seed=5)
    return BlockStore.create(directory, generator.rows_for_bytes(120_000),
                             block_size_bytes=15_000)


def test_pattern_wordcount_filters():
    mapper = PatternWordCount("^th.*")
    out = list(mapper.map(0, "the thing other"))
    assert out == [("the", 1), ("thing", 1)]


def test_pattern_wordcount_bad_regex():
    with pytest.raises(ExecutionError):
        PatternWordCount("([")


def test_wordcount_job_has_combiner_by_default():
    assert wordcount_job("a", ".*").combiner is not None
    assert wordcount_job("a", ".*", use_combiner=False).combiner is None


def test_selection_selectivity(lineitem_store):
    threshold = quantity_threshold_for_selectivity(0.10)
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))
    report = FifoLocalRunner(lineitem_store, reader=reader).run(
        [selection_job("s", threshold)])
    result = report.results["s"]
    measured = result.reduce_output_records / result.map_input_records
    assert measured == pytest.approx(0.10, abs=0.03)


def test_selection_rows_pass_through_unchanged(lineitem_store):
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))
    report = FifoLocalRunner(lineitem_store, reader=reader).run(
        [selection_job("s", 51.0)])  # selects everything
    result = report.results["s"]
    assert result.reduce_output_records == result.map_input_records
    _, row = result.output[0]
    assert len(row) == len(LINEITEM_COLUMNS)


def test_selection_threshold_validated():
    with pytest.raises(ExecutionError):
        selection_job("s", 0.0)


def test_aggregation_sums_by_returnflag(lineitem_store):
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))
    report = FifoLocalRunner(lineitem_store, reader=reader).run(
        [aggregation_job("agg")])
    totals = dict(report.results["agg"].output)
    assert set(totals) <= {"R", "A", "N"}
    assert all(v > 0 for v in totals.values())
    # Cross-check against a direct scan.
    expected = {}
    qty_index = LINEITEM_COLUMNS.index("l_returnflag")
    price_index = LINEITEM_COLUMNS.index("l_extendedprice")
    for i in range(lineitem_store.num_blocks):
        for line in lineitem_store.read_block(i).splitlines():
            fields = line.split("|")
            expected[fields[qty_index]] = (expected.get(fields[qty_index], 0.0)
                                           + float(fields[price_index]))
    for flag, total in totals.items():
        assert total == pytest.approx(expected[flag])


# --------------------------------------------------------- batched kernels

def _signature(result):
    """Everything observable about one job's outcome."""
    return (sorted(map(repr, result.output)), result.map_input_records,
            result.map_output_records, result.reduce_output_records,
            result.counters.format())


def _run(store, reader, jobs):
    report = FifoLocalRunner(store, reader=reader).run(jobs)
    return {job_id: _signature(result)
            for job_id, result in report.results.items()}


@pytest.mark.parametrize("use_combiner", [True, False])
def test_batched_wordcount_observably_identical(tmp_path, use_combiner):
    store = BlockStore.create(
        tmp_path / "s",
        ["the thing sings", "other things", "the the thought"],
        block_size_bytes=25)
    reader = TextLineReader()

    def jobs(batched):
        return [wordcount_job("w", "^th.*", use_combiner=use_combiner,
                              batched=batched)]

    assert _run(store, reader, jobs(True)) == _run(store, reader, jobs(False))


def test_batched_selection_observably_identical(lineitem_store):
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))
    threshold = quantity_threshold_for_selectivity(0.10)

    def jobs(batched):
        return [selection_job("s", threshold, batched=batched)]

    assert (_run(lineitem_store, reader, jobs(True))
            == _run(lineitem_store, reader, jobs(False)))


def test_batched_aggregation_observably_identical(lineitem_store):
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))

    def jobs(batched):
        return [aggregation_job("a", batched=batched)]

    assert (_run(lineitem_store, reader, jobs(True))
            == _run(lineitem_store, reader, jobs(False)))


def test_selection_scalar_path_identical_without_numpy(
        lineitem_store, monkeypatch):
    """With numpy gated off the kernel takes the per-line scalar path and
    must stay observably identical."""
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))
    threshold = quantity_threshold_for_selectivity(0.10)
    with_numpy = _run(lineitem_store, reader,
                      [selection_job("s", threshold)])
    monkeypatch.setattr(jobs_module, "_np", None)
    without = _run(lineitem_store, reader, [selection_job("s", threshold)])
    assert with_numpy == without


_ORDERKEY = LINEITEM_COLUMNS.index("l_orderkey")
_LINENUMBER = LINEITEM_COLUMNS.index("l_linenumber")
_QUANTITY = LINEITEM_COLUMNS.index("l_quantity")


def _row(orderkey, linenumber, quantity):
    """A minimal lineitem-shaped row with the fields selection reads."""
    fields = ["1"] * len(LINEITEM_COLUMNS)
    fields[_ORDERKEY] = str(orderkey)
    fields[_LINENUMBER] = str(linenumber)
    fields[_QUANTITY] = str(quantity)
    return "|".join(fields)


def test_selection_columnar_rejects_malformed_with_reader_error():
    mapper = SelectionBlockMapper(5.0)
    good = (_row(1, 1, 2) + "\n" + _row(2, 1, 7) + "\n").encode()
    count, outputs, _ = mapper.map_block(good, 0)
    assert count == 2
    assert [key for key, _ in outputs] == [(1, 1)]
    # A line violating the field-count contract must raise the exact
    # per-record reader error (via the scalar fallback path).
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))
    bad = _row(1, 1, 2) + "\n4|5\n"
    with pytest.raises(ValueError) as from_reader:
        list(reader.read(bad))
    with pytest.raises(ValueError) as from_kernel:
        mapper.map_block(bad.encode(), 0)
    assert str(from_kernel.value) == str(from_reader.value)


def test_selection_columnar_rejects_non_integer_quantity():
    # quantity "2.5" is not a plain-digit integer: the vectorized parse
    # must bail to the scalar path, which parses it as float — same as
    # the per-record mapper.
    mapper = SelectionBlockMapper(3.0)
    block = (_row(9, 1, "2.5") + "\n" + _row(9, 2, 7) + "\n").encode()
    count, outputs, _ = mapper.map_block(block, 0)
    assert count == 2
    assert [key for key, _ in outputs] == [(9, 1)]


def test_selection_columnar_requires_trailing_newline():
    mapper = SelectionBlockMapper(50.0)
    # No trailing \n: vectorized shape check refuses; scalar path still
    # yields the dangling record, like split_records does.
    block = (_row(1, 1, 2) + "\n" + _row(2, 1, 7)).encode()
    count, outputs, _ = mapper.map_block(block, 0)
    assert count == 2
    assert len(outputs) == 2


def test_columnar_structural_pass_shared_across_wave(monkeypatch):
    """Two selection kernels on one BlockData must run the structural
    numpy pass once (memoized by delimiter/field-count/column)."""
    if jobs_module._np is None:
        pytest.skip("numpy not available")
    calls = []
    original = SelectionBlockMapper._columnar_uint_uncached

    def spying(self, block, index):
        calls.append(index)
        return original(self, block, index)

    monkeypatch.setattr(SelectionBlockMapper, "_columnar_uint_uncached",
                        spying)
    block = BlockData((_row(1, 1, 2) + "\n" + _row(2, 1, 5) + "\n").encode())
    first = SelectionBlockMapper(5.0)
    second = SelectionBlockMapper(6.0)
    count_a, out_a, _ = first.map_block(block, 0)
    count_b, out_b, _ = second.map_block(block, 0)
    assert calls == [_QUANTITY]  # one structural pass for the wave
    assert count_a == count_b == 2
    assert len(out_a) == 1 and len(out_b) == 2


def test_wordcount_match_memo_amortizes_across_blocks():
    mapper = PatternWordCountBlock("^th.*")
    mapper.map_block(b"the thing\n", 0)
    assert mapper._match_memo == {"the": True, "thing": True}
    mapper.map_block(b"the other\n", 0)
    assert mapper._match_memo["other"] is False


def test_batched_kernels_vouch_only_for_exact_reader():
    selection = SelectionBlockMapper(2.0)
    assert selection.supports_reader(
        DelimitedReader("|", len(LINEITEM_COLUMNS)))
    assert not selection.supports_reader(DelimitedReader(","))
    assert not selection.supports_reader(DelimitedReader("|"))
    assert not selection.supports_reader(TextLineReader())
    wordcount = PatternWordCountBlock(".*")
    assert wordcount.supports_reader(TextLineReader())
    assert not wordcount.supports_reader(DelimitedReader("|"))
