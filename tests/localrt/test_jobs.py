"""Ready-made local job tests (wordcount, selection, aggregation)."""

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.jobs import (
    PatternWordCount,
    aggregation_job,
    selection_job,
    wordcount_job,
)
from repro.localrt.records import DelimitedReader
from repro.localrt.runners import FifoLocalRunner
from repro.localrt.storage import BlockStore
from repro.workloads.tpch import (
    LINEITEM_COLUMNS,
    LineitemGenerator,
    quantity_threshold_for_selectivity,
)


@pytest.fixture(scope="module")
def lineitem_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lineitem")
    generator = LineitemGenerator(seed=5)
    return BlockStore.create(directory, generator.rows_for_bytes(120_000),
                             block_size_bytes=15_000)


def test_pattern_wordcount_filters():
    mapper = PatternWordCount("^th.*")
    out = list(mapper.map(0, "the thing other"))
    assert out == [("the", 1), ("thing", 1)]


def test_pattern_wordcount_bad_regex():
    with pytest.raises(ExecutionError):
        PatternWordCount("([")


def test_wordcount_job_has_combiner_by_default():
    assert wordcount_job("a", ".*").combiner is not None
    assert wordcount_job("a", ".*", use_combiner=False).combiner is None


def test_selection_selectivity(lineitem_store):
    threshold = quantity_threshold_for_selectivity(0.10)
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))
    report = FifoLocalRunner(lineitem_store, reader=reader).run(
        [selection_job("s", threshold)])
    result = report.results["s"]
    measured = result.reduce_output_records / result.map_input_records
    assert measured == pytest.approx(0.10, abs=0.03)


def test_selection_rows_pass_through_unchanged(lineitem_store):
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))
    report = FifoLocalRunner(lineitem_store, reader=reader).run(
        [selection_job("s", 51.0)])  # selects everything
    result = report.results["s"]
    assert result.reduce_output_records == result.map_input_records
    _, row = result.output[0]
    assert len(row) == len(LINEITEM_COLUMNS)


def test_selection_threshold_validated():
    with pytest.raises(ExecutionError):
        selection_job("s", 0.0)


def test_aggregation_sums_by_returnflag(lineitem_store):
    reader = DelimitedReader("|", len(LINEITEM_COLUMNS))
    report = FifoLocalRunner(lineitem_store, reader=reader).run(
        [aggregation_job("agg")])
    totals = dict(report.results["agg"].output)
    assert set(totals) <= {"R", "A", "N"}
    assert all(v > 0 for v in totals.values())
    # Cross-check against a direct scan.
    expected = {}
    qty_index = LINEITEM_COLUMNS.index("l_returnflag")
    price_index = LINEITEM_COLUMNS.index("l_extendedprice")
    for i in range(lineitem_store.num_blocks):
        for line in lineitem_store.read_block(i).splitlines():
            fields = line.split("|")
            expected[fields[qty_index]] = (expected.get(fields[qty_index], 0.0)
                                           + float(fields[price_index]))
    for flag, total in totals.items():
        assert total == pytest.approx(expected[flag])
