"""BlockCache unit tests: LRU-by-bytes semantics, stats, thread safety."""

import threading

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.cache import BlockCache
from repro.localrt.storage import BlockStore


def lines(n, width=20):
    return [f"line {i:04d} ".ljust(width, "x") for i in range(n)]


def test_capacity_must_be_positive():
    with pytest.raises(ExecutionError, match="positive"):
        BlockCache(0)
    with pytest.raises(ExecutionError, match="positive"):
        BlockCache(-5)


def test_get_miss_then_hit():
    cache = BlockCache(100)
    assert cache.get(0) is None
    cache.put(0, "abc", 3)
    assert cache.get(0) == "abc"
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.hit_ratio == 0.5


def test_contains_does_not_touch_stats_or_recency():
    cache = BlockCache(10)
    cache.put(0, "aaaaa", 5)
    cache.put(1, "bbbbb", 5)
    assert 0 in cache and 1 in cache
    assert cache.stats.hits == 0 and cache.stats.misses == 0
    # 0 is still the LRU entry (contains didn't refresh it) -> evicted.
    cache.put(2, "ccccc", 5)
    assert 0 not in cache and 1 in cache and 2 in cache


def test_eviction_is_lru_by_bytes():
    cache = BlockCache(10)
    cache.put(0, "aaaa", 4)
    cache.put(1, "bbbb", 4)
    assert cache.get(0) == "aaaa"   # refresh 0; 1 becomes LRU
    evicted = cache.put(2, "cccccc", 6)  # needs 6 -> evicts LRU entry 1 only
    assert evicted == 1
    assert 0 in cache and 2 in cache
    assert 1 not in cache
    assert cache.current_bytes == 10


def test_eviction_count_and_current_bytes():
    cache = BlockCache(12)
    for i in range(4):
        cache.put(i, "x" * 4, 4)   # 4 entries of 4 bytes into a 12-byte cache
    assert len(cache) == 3
    assert cache.current_bytes == 12
    assert cache.stats.evictions == 1
    assert cache.stats.insertions == 4


def test_refresh_existing_entry_updates_bytes():
    cache = BlockCache(10)
    cache.put(0, "aaaa", 4)
    cache.put(0, "aaaaaaaa", 8)    # replace with a bigger payload
    assert cache.current_bytes == 8
    assert len(cache) == 1
    assert cache.get(0) == "aaaaaaaa"


def test_oversized_block_is_skipped_not_thrashed():
    cache = BlockCache(10)
    cache.put(0, "aaaa", 4)
    evicted = cache.put(1, "x" * 50, 50)
    assert evicted == 0
    assert 1 not in cache
    assert 0 in cache              # resident entries survive
    assert cache.stats.oversized_skips == 1


def test_negative_size_rejected():
    cache = BlockCache(10)
    with pytest.raises(ExecutionError):
        cache.put(0, "x", -1)


def test_clear_drops_entries_keeps_counters():
    cache = BlockCache(100)
    cache.put(0, "abc", 3)
    cache.get(0)
    cache.clear()
    assert len(cache) == 0
    assert cache.current_bytes == 0
    assert cache.stats.hits == 1
    cache.reset_stats()
    assert cache.stats.hits == 0


def test_concurrent_put_get_respects_budget():
    cache = BlockCache(64)
    errors = []

    def hammer(seed):
        try:
            for i in range(500):
                index = (seed * 31 + i) % 20
                if cache.get(index) is None:
                    cache.put(index, "v" * 8, 8)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(s,)) for s in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert cache.current_bytes <= 64
    assert len(cache) <= 8
    assert cache.stats.hits + cache.stats.misses == 6 * 500


def test_store_with_cache_reduces_physical_reads(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(60), block_size_bytes=100,
                              cache=BlockCache(1_000_000))
    for _ in range(3):
        for i in range(store.num_blocks):
            store.read_block(i)
    n = store.num_blocks
    assert store.stats.blocks_read == 3 * n            # logical: every visit
    assert store.stats.physical_blocks_read == n       # physical: first pass
    assert store.stats.cache_misses == n
    assert store.stats.cache_hits == 2 * n
    assert store.stats.cache_hit_ratio == pytest.approx(2 / 3)


def test_store_cache_eviction_accounted(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(60), block_size_bytes=100)
    # Capacity for roughly two blocks -> a full scan keeps evicting.
    store.attach_cache(BlockCache(2 * store.block_size_bytes(0)))
    for i in range(store.num_blocks):
        store.read_block(i)
    assert store.stats.cache_evictions > 0
    assert store.stats.physical_blocks_read == store.num_blocks


def test_detach_cache_restores_direct_reads(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(30), block_size_bytes=100,
                              cache=BlockCache(1_000_000))
    store.read_block(0)
    store.attach_cache(None)
    store.read_block(0)
    assert store.stats.physical_blocks_read == 2
    assert store.stats.cache_misses == 1
