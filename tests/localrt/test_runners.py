"""FIFO vs shared-scan runner equivalence and I/O accounting tests."""

import pytest

from repro.common.config import ExecutionConfig
from repro.common.errors import ExecutionError
from repro.localrt.jobs import wordcount_job
from repro.localrt.runners import FifoLocalRunner, SharedScanRunner

PATTERNS = ["^b.*", ".*ing$", "^[aeiou].*"]


def make_jobs():
    return [wordcount_job(f"wc{i}", p) for i, p in enumerate(PATTERNS)]


def test_fifo_reads_file_per_job(corpus_store):
    report = FifoLocalRunner(corpus_store).run(make_jobs())
    assert report.blocks_read == 3 * corpus_store.num_blocks
    assert report.bytes_read == 3 * corpus_store.total_bytes


def test_shared_scan_reads_once_when_simultaneous(corpus_store):
    report = SharedScanRunner(corpus_store, ExecutionConfig(blocks_per_segment=4)).run(make_jobs())
    assert report.blocks_read == corpus_store.num_blocks
    assert report.bytes_read == corpus_store.total_bytes


def test_outputs_identical_across_runners(corpus_store):
    fifo = FifoLocalRunner(corpus_store).run(make_jobs())
    shared = SharedScanRunner(corpus_store, ExecutionConfig(blocks_per_segment=3)).run(
        make_jobs(), arrival_iterations={"wc1": 1, "wc2": 2})
    for job_id in ("wc0", "wc1", "wc2"):
        assert (dict(fifo.results[job_id].output)
                == dict(shared.results[job_id].output))


def test_staggered_arrivals_read_between_1x_and_fifo(corpus_store):
    shared = SharedScanRunner(corpus_store, ExecutionConfig(blocks_per_segment=3)).run(
        make_jobs(), arrival_iterations={"wc1": 1, "wc2": 3})
    assert corpus_store.total_bytes < shared.bytes_read
    assert shared.bytes_read < 3 * corpus_store.total_bytes


def test_completed_iteration_recorded(corpus_store):
    shared = SharedScanRunner(corpus_store, ExecutionConfig(blocks_per_segment=4)).run(
        make_jobs(), arrival_iterations={"wc2": 1})
    # 10 blocks, segment 4 -> chunks 4,4,2 per cycle.
    assert shared.results["wc0"].completed_iteration == 2
    assert shared.results["wc2"].completed_iteration > 2


def test_gap_between_arrivals_skips_idle_iterations(corpus_store):
    report = SharedScanRunner(corpus_store, ExecutionConfig(blocks_per_segment=4)).run(
        [wordcount_job("a", ".*"), wordcount_job("b", ".*")],
        arrival_iterations={"b": 50})
    assert report.results["a"].completed_iteration < 50
    assert report.results["b"].completed_iteration >= 50


def test_duplicate_job_ids_rejected(corpus_store):
    jobs = [wordcount_job("dup", ".*"), wordcount_job("dup", ".*")]
    with pytest.raises(ExecutionError, match="duplicate"):
        SharedScanRunner(corpus_store).run(jobs)
    with pytest.raises(ExecutionError, match="duplicate"):
        FifoLocalRunner(corpus_store).run(jobs)


def test_unknown_arrival_rejected(corpus_store):
    with pytest.raises(ExecutionError, match="unknown"):
        SharedScanRunner(corpus_store).run(
            [wordcount_job("a", ".*")], arrival_iterations={"ghost": 0})


def test_negative_arrival_rejected(corpus_store):
    with pytest.raises(ExecutionError):
        SharedScanRunner(corpus_store).run(
            [wordcount_job("a", ".*")], arrival_iterations={"a": -1})


def test_no_jobs_rejected(corpus_store):
    with pytest.raises(ExecutionError):
        SharedScanRunner(corpus_store).run([])
    with pytest.raises(ExecutionError):
        FifoLocalRunner(corpus_store).run([])


def test_iteration_hook_called(corpus_store):
    calls = []
    SharedScanRunner(corpus_store, ExecutionConfig(blocks_per_segment=4)).run(
        [wordcount_job("a", ".*")],
        on_iteration_end=lambda i, states: calls.append((i, len(states))))
    assert [i for i, _ in calls] == [0, 1, 2]
    assert all(count == 1 for _, count in calls)


def test_run_report_missing_job(corpus_store):
    report = FifoLocalRunner(corpus_store).run([wordcount_job("a", ".*")])
    with pytest.raises(ExecutionError):
        report.result("ghost")
