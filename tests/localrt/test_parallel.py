"""Parallel map execution: thread-pool runs must equal serial runs."""

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.engine import JobRunState
from repro.localrt.jobs import wordcount_job
from repro.localrt.parallel import MapTaskSpec, execute_map_wave
from repro.localrt.records import TextLineReader
from repro.localrt.runners import FifoLocalRunner, SharedScanRunner

PATTERNS = ["^b.*", ".*ing$", "^[aeiou].*"]


def make_jobs():
    return [wordcount_job(f"wc{i}", p) for i, p in enumerate(PATTERNS)]


def test_parallel_fifo_equals_serial(corpus_store):
    serial = FifoLocalRunner(corpus_store, workers=1).run(make_jobs())
    parallel = FifoLocalRunner(corpus_store, workers=4).run(make_jobs())
    for job_id in ("wc0", "wc1", "wc2"):
        assert (serial.results[job_id].output
                == parallel.results[job_id].output)
    assert parallel.blocks_read == serial.blocks_read


def test_parallel_shared_scan_equals_serial(corpus_store):
    arrivals = {"wc1": 1, "wc2": 2}
    serial = SharedScanRunner(corpus_store, blocks_per_segment=3,
                              workers=1).run(make_jobs(), arrivals)
    parallel = SharedScanRunner(corpus_store, blocks_per_segment=3,
                                workers=4).run(make_jobs(), arrivals)
    for job_id in ("wc0", "wc1", "wc2"):
        assert (serial.results[job_id].output
                == parallel.results[job_id].output)
    assert parallel.bytes_read == serial.bytes_read
    assert parallel.iterations == serial.iterations


def test_read_counters_thread_safe(corpus_store):
    """Concurrent read_block calls must not lose counter increments."""
    before = corpus_store.stats.blocks_read
    FifoLocalRunner(corpus_store, workers=8).run(make_jobs())
    delta = corpus_store.stats.blocks_read - before
    assert delta == 3 * corpus_store.num_blocks


def test_execute_map_wave_validation(corpus_store):
    reader = TextLineReader()
    state = JobRunState(wordcount_job("a", ".*"))
    with pytest.raises(ExecutionError, match="workers"):
        execute_map_wave(corpus_store, reader,
                         [MapTaskSpec(0, (state,))], workers=0)
    with pytest.raises(ExecutionError, match="duplicate"):
        execute_map_wave(corpus_store, reader,
                         [MapTaskSpec(0, (state,)), MapTaskSpec(0, (state,))])
    with pytest.raises(ExecutionError, match="no jobs"):
        MapTaskSpec(0, ())


def test_empty_wave_is_noop(corpus_store):
    execute_map_wave(corpus_store, TextLineReader(), [], workers=4)


def test_invalid_workers_on_runners(corpus_store):
    with pytest.raises(ExecutionError):
        FifoLocalRunner(corpus_store, workers=0)
    with pytest.raises(ExecutionError):
        SharedScanRunner(corpus_store, workers=0)
