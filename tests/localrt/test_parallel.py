"""Parallel map execution: every backend must equal the serial run."""

import pytest

from repro.common.config import ExecutionConfig
from repro.common.errors import ExecutionError
from repro.localrt.engine import JobRunState
from repro.localrt.jobs import wordcount_job
from repro.localrt.parallel import (
    BACKEND_NAMES,
    MapBackend,
    MapTaskSpec,
    ProcessMapBackend,
    SerialMapBackend,
    ThreadMapBackend,
    backend_from_config,
    execute_map_wave,
    make_backend,
    resolve_backend,
)
from repro.localrt.records import TextLineReader
from repro.localrt.runners import FifoLocalRunner, SharedScanRunner

PATTERNS = ["^b.*", ".*ing$", "^[aeiou].*"]


def make_jobs():
    return [wordcount_job(f"wc{i}", p) for i, p in enumerate(PATTERNS)]


def test_parallel_fifo_equals_serial(corpus_store):
    serial = FifoLocalRunner(corpus_store, ExecutionConfig()).run(make_jobs())
    parallel = FifoLocalRunner(
        corpus_store,
        ExecutionConfig(map_backend="threads", map_workers=4)).run(make_jobs())
    for job_id in ("wc0", "wc1", "wc2"):
        assert (serial.results[job_id].output
                == parallel.results[job_id].output)
    assert parallel.blocks_read == serial.blocks_read


def test_parallel_shared_scan_equals_serial(corpus_store):
    arrivals = {"wc1": 1, "wc2": 2}
    serial = SharedScanRunner(
        corpus_store,
        ExecutionConfig(blocks_per_segment=3)).run(make_jobs(), arrivals)
    parallel = SharedScanRunner(
        corpus_store,
        ExecutionConfig(blocks_per_segment=3, map_backend="threads",
                        map_workers=4)).run(make_jobs(), arrivals)
    for job_id in ("wc0", "wc1", "wc2"):
        assert (serial.results[job_id].output
                == parallel.results[job_id].output)
    assert parallel.bytes_read == serial.bytes_read
    assert parallel.iterations == serial.iterations


def test_read_counters_thread_safe(corpus_store):
    """Concurrent read_block calls must not lose counter increments."""
    before = corpus_store.stats.blocks_read
    FifoLocalRunner(
        corpus_store,
        ExecutionConfig(map_backend="threads", map_workers=8)).run(make_jobs())
    delta = corpus_store.stats.blocks_read - before
    assert delta == 3 * corpus_store.num_blocks


def test_execute_map_wave_validation(corpus_store):
    reader = TextLineReader()
    state = JobRunState(wordcount_job("a", ".*"))
    with pytest.raises(ExecutionError, match="workers"):
        execute_map_wave(corpus_store, reader,
                         [MapTaskSpec(0, (state,))], workers=0)
    with pytest.raises(ExecutionError, match="duplicate"):
        execute_map_wave(corpus_store, reader,
                         [MapTaskSpec(0, (state,)), MapTaskSpec(0, (state,))])
    with pytest.raises(ExecutionError, match="no jobs"):
        MapTaskSpec(0, ())


def test_empty_wave_is_noop(corpus_store):
    execute_map_wave(corpus_store, TextLineReader(), [], workers=4)


def test_invalid_workers_on_runners(corpus_store):
    # The legacy kwarg still validates (until the shim is removed).
    with pytest.warns(DeprecationWarning), pytest.raises(ExecutionError):
        FifoLocalRunner(corpus_store, workers=0)
    with pytest.warns(DeprecationWarning), pytest.raises(ExecutionError):
        SharedScanRunner(corpus_store, workers=0)


# ---------------------------------------------------------------- backends
def test_process_backend_fifo_equals_serial(corpus_store):
    serial = FifoLocalRunner(corpus_store, ExecutionConfig()).run(make_jobs())
    procs = FifoLocalRunner(
        corpus_store,
        ExecutionConfig(map_backend="processes",
                        map_workers=2)).run(make_jobs())
    for job_id in ("wc0", "wc1", "wc2"):
        assert serial.results[job_id].output == procs.results[job_id].output
        assert (list(serial.results[job_id].counters)
                == list(procs.results[job_id].counters))
    assert procs.blocks_read == serial.blocks_read
    assert procs.bytes_read == serial.bytes_read


def test_process_backend_shared_scan_equals_serial(corpus_store):
    arrivals = {"wc1": 1, "wc2": 2}
    serial = SharedScanRunner(
        corpus_store,
        ExecutionConfig(blocks_per_segment=3)).run(make_jobs(), arrivals)
    procs = SharedScanRunner(
        corpus_store,
        ExecutionConfig(blocks_per_segment=3, map_backend="processes",
                        map_workers=2)).run(make_jobs(), arrivals)
    for job_id in ("wc0", "wc1", "wc2"):
        assert serial.results[job_id].output == procs.results[job_id].output
    assert procs.bytes_read == serial.bytes_read
    assert procs.iterations == serial.iterations


def test_make_backend_names():
    for name in BACKEND_NAMES:
        backend = make_backend(name, workers=2)
        assert backend.name == name
        backend.close()
    with pytest.raises(ExecutionError, match="unknown map backend"):
        make_backend("gpu")


def test_backend_from_config():
    backend = backend_from_config(ExecutionConfig(map_backend="threads",
                                                  map_workers=3))
    assert isinstance(backend, ThreadMapBackend)
    assert backend.workers == 3
    backend.close()


def test_resolve_backend_contract():
    serial, owned = resolve_backend(None, 1)
    assert isinstance(serial, SerialMapBackend) and owned
    threads, owned = resolve_backend(None, 4)
    assert isinstance(threads, ThreadMapBackend) and owned
    threads.close()
    mine = SerialMapBackend()
    same, owned = resolve_backend(mine, 4)
    assert same is mine and not owned
    with pytest.raises(ExecutionError, match="backend"):
        resolve_backend(42, 1)  # type: ignore[arg-type]


def test_unpicklable_job_fails_by_name(corpus_store):
    job = wordcount_job("closure", ".*")
    # A lambda-held mapper attribute cannot cross the process boundary.
    job.mapper.poison = lambda: None
    runner = FifoLocalRunner(
        corpus_store,
        ExecutionConfig(map_backend="processes", map_workers=2))
    with pytest.raises(ExecutionError, match="'closure'.*processes"):
        runner.run([job])


def test_backend_result_shape_is_validated(corpus_store):
    class TruncatingBackend(MapBackend):
        name = "truncating"

        def run_wave(self, store, reader, tasks):
            return []  # silently drops every task

    class MalformedBackend(MapBackend):
        name = "malformed"

        def run_wave(self, store, reader, tasks):
            # One output list per task but too few per-job buffers.
            return [(0, [], []) for _ in tasks]

    state = JobRunState(wordcount_job("a", ".*"))
    tasks = [MapTaskSpec(0, (state,))]
    with pytest.raises(ExecutionError, match="0 results for 1 tasks"):
        execute_map_wave(corpus_store, TextLineReader(), tasks,
                         backend=TruncatingBackend())
    with pytest.raises(ExecutionError, match="malformed"):
        execute_map_wave(corpus_store, TextLineReader(), tasks,
                         backend=MalformedBackend())


def test_backend_context_manager_reusable(corpus_store):
    with ProcessMapBackend(workers=2) as backend:
        # Injecting a caller-owned backend instance is only possible
        # through the legacy kwarg; keep exercising it until removal.
        with pytest.warns(DeprecationWarning):
            runner = SharedScanRunner(corpus_store, backend=backend)
        first = runner.run(make_jobs())
        second = runner.run(make_jobs())  # pool reused across runs
    for job_id in ("wc0", "wc1", "wc2"):
        assert first.results[job_id].output == second.results[job_id].output
