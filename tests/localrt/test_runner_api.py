"""Runner construction surface: canonical ExecutionConfig path and the
deprecated legacy shims (which must warn but keep their semantics)."""

import json
import tempfile
from pathlib import Path

import pytest

from repro.common.config import ExecutionConfig, TraceConfig
from repro.common.errors import ExecutionError
from repro.localrt.jobs import wordcount_job
from repro.localrt.parallel import SerialMapBackend
from repro.localrt.records import TextLineReader
from repro.localrt.runners import FifoLocalRunner, SharedScanRunner
from repro.obs import NULL_TRACER, TraceSession, Tracer


@pytest.fixture(scope="module")
def store():
    from repro.localrt.storage import BlockStore
    with tempfile.TemporaryDirectory() as tmp:
        lines = [f"the cat number {i} sat" for i in range(120)]
        yield BlockStore.create(Path(tmp) / "c", lines,
                                block_size_bytes=256)


def jobs():
    return [wordcount_job("wc", ".*")]


# ----------------------------------------------------------- canonical path
def test_default_construction_uses_config_defaults(store):
    runner = SharedScanRunner(store)
    assert runner.blocks_per_segment == ExecutionConfig().blocks_per_segment
    assert runner.prefetch_depth == 0
    assert runner.tracer is NULL_TRACER


def test_config_drives_every_knob(store):
    config = ExecutionConfig(map_backend="serial", blocks_per_segment=2,
                             cache_capacity_bytes=1 << 20, prefetch_depth=2)
    runner = SharedScanRunner(store, config)
    assert runner.blocks_per_segment == 2
    assert runner.prefetch_depth == 2
    assert store.cache is not None
    report = runner.run(jobs())
    assert report.result("wc").output


def test_config_type_is_checked(store):
    with pytest.raises(ExecutionError, match="ExecutionConfig"):
        SharedScanRunner(store, {"blocks_per_segment": 2})


def test_untraced_run_reports_no_trace_or_metrics(store):
    report = FifoLocalRunner(store).run(jobs())
    assert report.trace_path is None
    assert report.metrics is None


def test_trace_config_records_and_exports(tmp_path, store):
    trace_path = tmp_path / "run.trace.json"
    config = ExecutionConfig(
        blocks_per_segment=2,
        trace=TraceConfig(enabled=True, path=str(trace_path)))
    report = SharedScanRunner(store, config).run(jobs())
    assert report.trace_path == str(trace_path)
    document = json.loads(trace_path.read_text(encoding="utf-8"))
    names = {e.get("name") for e in document["traceEvents"]}
    assert {"s3.run", "s3.iteration", "map.wave", "reduce.job",
            "io.wave"} <= names
    # Per-wave I/O deltas were folded into the run's metrics registry.
    assert report.metrics is not None
    snapshot = report.metrics.snapshot()
    assert snapshot["io.blocks_read"] == report.blocks_read
    assert snapshot["wave.blocks"]["count"] == report.iterations


def test_trace_enabled_without_path_keeps_events_in_memory(store):
    config = ExecutionConfig(trace=TraceConfig(enabled=True))
    runner = FifoLocalRunner(store, config)
    report = runner.run(jobs())
    assert report.trace_path is None
    assert report.metrics is not None
    assert len(runner.tracer) > 0
    assert any(e.name == "fifo.job" for e in runner.tracer.spans())


def test_explicit_tracer_wins(store):
    tracer = Tracer(name="mine")
    runner = SharedScanRunner(store, tracer=tracer)
    assert runner.tracer is tracer
    runner.run(jobs())
    assert any(e.name == "s3.run" for e in tracer.spans())


def test_active_session_supplies_tracer(store):
    with TraceSession("outer") as session:
        runner = SharedScanRunner(store)
        assert runner.tracer in session.tracers()
        runner.run(jobs())
        assert session.event_count() > 0


def test_jsonl_trace_format(tmp_path, store):
    trace_path = tmp_path / "run.jsonl"
    config = ExecutionConfig(trace=TraceConfig(
        enabled=True, path=str(trace_path), format="jsonl"))
    report = FifoLocalRunner(store, config).run(jobs())
    assert report.trace_path == str(trace_path)
    first = trace_path.read_text(encoding="utf-8").splitlines()[0]
    assert json.loads(first)["name"]


# ------------------------------------------------------------ legacy shims
def test_legacy_workers_kwarg_warns_but_works(store):
    with pytest.warns(DeprecationWarning, match="workers="):
        runner = FifoLocalRunner(store, workers=2)
    assert runner.workers == 2
    assert runner.run(jobs()).result("wc").output


def test_legacy_backend_instance_is_caller_owned(store):
    backend = SerialMapBackend()
    with pytest.warns(DeprecationWarning, match="backend="):
        runner = SharedScanRunner(store, backend=backend)
    assert runner.backend is backend
    assert runner._owns_backend is False


def test_legacy_blocks_per_segment_warns_and_overrides(store):
    with pytest.warns(DeprecationWarning, match="blocks_per_segment"):
        runner = SharedScanRunner(store, blocks_per_segment=7)
    assert runner.blocks_per_segment == 7


def test_legacy_positional_reader_warns(store):
    with pytest.warns(DeprecationWarning, match="reader as a keyword"):
        runner = FifoLocalRunner(store, TextLineReader())
    assert isinstance(runner.reader, TextLineReader)


def test_reader_passed_twice_is_an_error(store):
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ExecutionError, match="both"):
            FifoLocalRunner(store, TextLineReader(),
                            reader=TextLineReader())


def test_from_config_warns_and_matches_canonical(store):
    config = ExecutionConfig(blocks_per_segment=3)
    with pytest.warns(DeprecationWarning, match="from_config"):
        legacy = SharedScanRunner.from_config(store, config,
                                              blocks_per_segment=5)
    # Historical quirk preserved: the argument overrides the config.
    assert legacy.blocks_per_segment == 5
    with pytest.warns(DeprecationWarning, match="from_config"):
        fifo = FifoLocalRunner.from_config(store, config)
    assert fifo.run(jobs()).result("wc").output


def test_legacy_invalid_workers_still_raises(store):
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ExecutionError, match="workers"):
            FifoLocalRunner(store, workers=0)


def test_legacy_invalid_blocks_per_segment_still_raises(store):
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ExecutionError, match="positive"):
            SharedScanRunner(store, blocks_per_segment=0)
