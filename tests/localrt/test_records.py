"""Record reader tests."""

import pytest

from repro.localrt.records import DelimitedReader, TextLineReader


def test_text_line_reader_offsets():
    records = list(TextLineReader().read("ab\ncdef\n"))
    assert records == [(0, "ab"), (3, "cdef")]


def test_text_line_reader_base_offset():
    records = list(TextLineReader().read("x\ny\n", base_offset=100))
    assert records == [(100, "x"), (102, "y")]


def test_text_line_reader_empty_block():
    assert list(TextLineReader().read("")) == []


def test_delimited_reader_splits_fields():
    records = list(DelimitedReader("|").read("a|b|c\nd|e|f\n"))
    assert records == [(0, ("a", "b", "c")), (6, ("d", "e", "f"))]


def test_delimited_reader_field_count_enforced():
    reader = DelimitedReader("|", expected_fields=3)
    with pytest.raises(ValueError, match="malformed"):
        list(reader.read("a|b\n"))


def test_delimited_reader_custom_delimiter():
    records = list(DelimitedReader(",").read("1,2\n"))
    assert records == [(0, ("1", "2"))]


def test_delimited_reader_empty_delimiter_rejected():
    with pytest.raises(ValueError):
        DelimitedReader("")
