"""Record reader tests."""

import pytest

from repro.localrt.records import (
    DelimitedReader,
    TextLineReader,
    split_records,
)


def test_text_line_reader_offsets():
    records = list(TextLineReader().read("ab\ncdef\n"))
    assert records == [(0, "ab"), (3, "cdef")]


def test_text_line_reader_base_offset():
    records = list(TextLineReader().read("x\ny\n", base_offset=100))
    assert records == [(100, "x"), (102, "y")]


def test_text_line_reader_empty_block():
    assert list(TextLineReader().read("")) == []


def test_delimited_reader_splits_fields():
    records = list(DelimitedReader("|").read("a|b|c\nd|e|f\n"))
    assert records == [(0, ("a", "b", "c")), (6, ("d", "e", "f"))]


def test_delimited_reader_field_count_enforced():
    reader = DelimitedReader("|", expected_fields=3)
    with pytest.raises(ValueError, match="malformed"):
        list(reader.read("a|b\n"))


def test_delimited_reader_custom_delimiter():
    records = list(DelimitedReader(",").read("1,2\n"))
    assert records == [(0, ("1", "2"))]


def test_delimited_reader_empty_delimiter_rejected():
    with pytest.raises(ValueError):
        DelimitedReader("")


def test_split_records_trailing_fragment_kept():
    assert split_records("a\nb") == ["a", "b"]
    assert split_records("a\nb\n") == ["a", "b"]
    assert split_records("") == []
    assert split_records("\n") == [""]


# Regression tests for the splitlines() bug: records are delimited by
# "\n" ONLY.  splitlines() also breaks on \r\n, \v, \x85 and the other
# unicode terminators while the offset arithmetic assumes one "\n" per
# line, silently corrupting the byte-offset keys.

def test_crlf_stays_inside_the_record_value():
    # Hadoop TextInputFormat semantics for a lone-\n file: the \r is data.
    records = list(TextLineReader().read("ab\r\ncd\r\n"))
    assert records == [(0, "ab\r"), (4, "cd\r")]


def test_unicode_terminators_do_not_split_records():
    # \v (0x0b), \x85 (NEL) and \u2028 (LINE SEPARATOR) all break
    # str.splitlines() but must stay inside the record; only "\n"
    # delimits.
    text = "a\vb\x85c\nd\u2028e\n"
    records = list(TextLineReader().read(text))
    assert records == [(0, "a\vb\x85c"), (6, "d\u2028e")]
    # Offsets advance by len(line) + 1 exactly.
    assert records[1][0] == len(records[0][1]) + 1


def test_offsets_exact_with_crlf_and_base_offset():
    text = "x\r\nlonger line\r\n"
    records = list(TextLineReader().read(text, base_offset=1000))
    assert records == [(1000, "x\r"), (1003, "longer line\r")]
    assert 1003 == 1000 + len("x\r") + 1


def test_delimited_reader_crlf_lands_in_last_field():
    records = list(DelimitedReader("|").read("a|b\r\nc|d\r\n"))
    assert records == [(0, ("a", "b\r")), (5, ("c", "d\r"))]
