"""Hadoop-style counter tests."""

import pytest

from repro.common.config import ExecutionConfig
from repro.common.errors import ExecutionError
from repro.localrt.counters import FRAMEWORK_GROUP, Counters, CounterUser
from repro.localrt.jobs import wordcount_job
from repro.localrt.runners import FifoLocalRunner, SharedScanRunner


def test_increment_and_value():
    counters = Counters()
    counters.increment("g", "n", 3)
    counters.increment("g", "n")
    assert counters.value("g", "n") == 4
    assert counters.value("g", "missing") == 0
    assert counters.value("other", "n") == 0


def test_negative_total_rejected():
    counters = Counters()
    counters.increment("g", "n", 2)
    counters.increment("g", "n", -2)
    with pytest.raises(ExecutionError, match="negative"):
        counters.increment("g", "n", -1)


def test_empty_names_rejected():
    with pytest.raises(ExecutionError):
        Counters().increment("", "n")
    with pytest.raises(ExecutionError):
        Counters().increment("g", "")


def test_merge():
    a, b = Counters(), Counters()
    a.increment("g", "x", 1)
    b.increment("g", "x", 2)
    b.increment("h", "y", 5)
    a.merge(b)
    assert a.value("g", "x") == 3
    assert a.value("h", "y") == 5


def test_iteration_and_format():
    counters = Counters()
    counters.increment("b", "two", 2)
    counters.increment("a", "one", 1)
    assert list(counters) == [("a", "one", 1), ("b", "two", 2)]
    assert len(counters) == 2
    text = counters.format()
    assert "a" in text and "one=1" in text


def test_counter_user_fallback():
    class Thing(CounterUser):
        pass

    thing = Thing()
    thing.counters.increment("g", "n")
    assert thing.counters.value("g", "n") == 1


def test_framework_counters_populated(corpus_store):
    report = FifoLocalRunner(corpus_store).run([wordcount_job("wc", ".*")])
    counters = report.results["wc"].counters
    result = report.results["wc"]
    assert counters.value(FRAMEWORK_GROUP, "map_input_records") \
        == result.map_input_records
    assert counters.value(FRAMEWORK_GROUP, "reduce_output_records") \
        == result.reduce_output_records


def test_user_counters_aggregate_across_blocks(corpus_store):
    report = FifoLocalRunner(corpus_store).run(
        [wordcount_job("wc", "^b.*")])
    counters = report.results["wc"].counters
    scanned = counters.value("wordcount", "words_scanned")
    matched = counters.value("wordcount", "words_matched")
    assert scanned > 0
    assert 0 < matched < scanned
    # Every matched word survives the combiner as a count: the final
    # per-word counts sum back to the raw match counter.
    total_occurrences = sum(count for _, count
                            in report.results["wc"].output)
    assert matched == total_occurrences


def test_counters_identical_serial_vs_parallel(corpus_store):
    serial = FifoLocalRunner(corpus_store, ExecutionConfig()).run(
        [wordcount_job("wc", "^b.*")])
    parallel = FifoLocalRunner(
        corpus_store,
        ExecutionConfig(map_backend="threads", map_workers=4)).run(
        [wordcount_job("wc", "^b.*")])
    assert (list(serial.results["wc"].counters)
            == list(parallel.results["wc"].counters))


def test_counters_in_shared_scan(corpus_store):
    jobs = [wordcount_job("a", "^b.*"), wordcount_job("b", ".*ing$")]
    report = SharedScanRunner(
        corpus_store, ExecutionConfig(blocks_per_segment=3)).run(
        jobs, {"b": 1})
    for job_id in ("a", "b"):
        counters = report.results[job_id].counters
        assert counters.value("wordcount", "words_scanned") > 0
    # Both jobs scanned the full corpus despite different admissions.
    assert (report.results["a"].counters.value("wordcount", "words_scanned")
            == report.results["b"].counters.value("wordcount",
                                                  "words_scanned"))
