"""Sharded block store: layout, routing, failover, and counter model."""

import json

import pytest

from repro.common.config import ExecutionConfig
from repro.common.errors import ExecutionError
from repro.localrt.api import BlockStoreProtocol
from repro.localrt.jobs import wordcount_job
from repro.localrt.runners import FifoLocalRunner, SharedScanRunner
from repro.localrt.sharded import (
    DOWN_MARKER,
    MANIFEST_NAME,
    ShardedBlockStore,
    open_store,
    shard_id,
)
from repro.localrt.storage import BlockStore
from repro.workloads.text import TextCorpusGenerator

NUM_SHARDS = 4
REPLICATION = 2


def corpus_lines(n_bytes: int = 40_000) -> list:
    return list(TextCorpusGenerator(vocabulary_size=300,
                                    seed=123).lines(n_bytes))


@pytest.fixture
def lines():
    return corpus_lines()


@pytest.fixture
def sharded(tmp_path, lines) -> ShardedBlockStore:
    return ShardedBlockStore.create(tmp_path / "shards", lines, 4_000,
                                    num_shards=NUM_SHARDS,
                                    replication=REPLICATION)


@pytest.fixture
def single(tmp_path, lines) -> BlockStore:
    return BlockStore.create(tmp_path / "corpus", lines,
                             block_size_bytes=4_000)


# ------------------------------------------------------------------ layout

def test_create_writes_every_block_r_times(sharded):
    for block in range(sharded.num_blocks):
        filename = BlockStore.BLOCK_PATTERN.format(block)
        holders = [shard for shard in range(NUM_SHARDS)
                   if (sharded.directory / shard_id(shard)
                       / filename).is_file()]
        assert len(holders) == REPLICATION
        assert block % NUM_SHARDS in holders  # primary holds its block


def test_satisfies_block_store_protocol(sharded, single):
    assert isinstance(sharded, BlockStoreProtocol)
    assert isinstance(single, BlockStoreProtocol)


def test_geometry_matches_single_store(sharded, single):
    assert sharded.num_blocks == single.num_blocks
    assert sharded.total_bytes == single.total_bytes
    for index in range(single.num_blocks):
        assert sharded.block_size_bytes(index) \
            == single.block_size_bytes(index)
        assert sharded.block_offset(index) == single.block_offset(index)
        assert sharded.read_block(index) == single.read_block(index)
        assert sharded.read_block_bytes(index) \
            == single.read_block_bytes(index)


def test_open_store_dispatches_on_manifest(sharded, single):
    assert isinstance(open_store(sharded.directory), ShardedBlockStore)
    assert isinstance(open_store(single.directory), BlockStore)


def test_create_validation(tmp_path, lines):
    with pytest.raises(ExecutionError, match="replication"):
        ShardedBlockStore.create(tmp_path / "a", lines, 4_000,
                                 num_shards=2, replication=3)
    with pytest.raises(ExecutionError, match="num_shards"):
        ShardedBlockStore.create(tmp_path / "b", lines, 4_000,
                                 num_shards=0)
    with pytest.raises(ExecutionError, match="no lines"):
        ShardedBlockStore.create(tmp_path / "c", [], 4_000)
    ShardedBlockStore.create(tmp_path / "d", lines, 4_000)
    with pytest.raises(ExecutionError, match="already contains"):
        ShardedBlockStore.create(tmp_path / "d", lines, 4_000)


def test_corrupt_manifest_rejected(sharded):
    path = sharded.directory / MANIFEST_NAME
    path.write_text(json.dumps({"num_shards": NUM_SHARDS}))
    with pytest.raises(ExecutionError, match="corrupt shard manifest"):
        ShardedBlockStore(sharded.directory)
    path.write_text(json.dumps(
        {"num_shards": 2, "replication": 3, "num_blocks": 4}))
    with pytest.raises(ExecutionError, match="replication"):
        ShardedBlockStore(sharded.directory)


def test_not_a_sharded_store(single):
    with pytest.raises(ExecutionError, match="manifest"):
        ShardedBlockStore(single.directory)


def test_more_shards_than_blocks(tmp_path):
    store = ShardedBlockStore.create(tmp_path / "wide", ["one line"],
                                    64, num_shards=3, replication=1)
    assert store.num_blocks == 1
    assert store.read_block(0) == "one line\n"
    assert store.shard_blocks_read() == (1, 0, 0)


# ----------------------------------------------------------------- routing

def test_locations_primary_first(sharded):
    for index in range(sharded.num_blocks):
        locations = sharded.block_locations(index)
        assert len(locations) == REPLICATION
        assert locations[0] == shard_id(index % NUM_SHARDS)


def test_locations_rotate_when_primary_down(sharded):
    primary = 0 % NUM_SHARDS
    before = sharded.block_locations(0)
    sharded.fail_shard(primary)
    after = sharded.block_locations(0)
    assert set(after) == set(before)
    assert after[0] != shard_id(primary)
    assert after[-1] == shard_id(primary)


def test_failover_read_is_byte_identical(sharded, single):
    sharded.fail_shard(0)
    for index in range(sharded.num_blocks):
        assert sharded.read_block_bytes(index) \
            == single.read_block_bytes(index)
    stats = sharded.stats_snapshot()
    # Blocks with primary on shard 0 were served by a replica.
    primaries_on_0 = sum(1 for index in range(sharded.num_blocks)
                         if index % NUM_SHARDS == 0)
    assert stats.replica_fallback_reads == primaries_on_0
    assert stats.blocks_read == sharded.num_blocks
    assert sharded.shard_blocks_read()[0] == 0


def test_restore_shard_reinstates_primary(sharded):
    sharded.fail_shard(1)
    assert sharded.down_shards() == (1,)
    sharded.restore_shard(1)
    assert sharded.down_shards() == ()
    sharded.read_block(1)
    assert sharded.stats_snapshot().replica_fallback_reads == 0
    assert sharded.shard_blocks_read()[1] == 1


def test_all_replicas_down_raises(sharded):
    sharded.fail_shard(0)
    sharded.fail_shard(1)
    with pytest.raises(ExecutionError, match="all 2 replicas"):
        sharded.read_block(0)  # replicas of block 0 live on shards 0 and 1


def test_down_marker_visible_to_other_instances(sharded):
    sharded.fail_shard(2)
    assert (sharded.directory / shard_id(2) / DOWN_MARKER).is_file()
    other = ShardedBlockStore(sharded.directory)
    assert other.down_shards() == (2,)
    other.restore_shard(2)
    # An instance that already observed the failure keeps it until its
    # own restore_shard — recovery is an explicit action, not a poll.
    assert sharded.down_shards() == (2,)
    sharded.restore_shard(2)
    assert sharded.down_shards() == ()


# ---------------------------------------------------------------- counters

def test_stats_aggregate_and_reset(sharded):
    for index, _text in sharded.iter_blocks():
        pass
    stats = sharded.stats_snapshot()
    assert stats.blocks_read == sharded.num_blocks
    assert stats.bytes_read == sharded.total_bytes
    assert sum(sharded.shard_blocks_read()) == sharded.num_blocks
    assert sharded.logical_blocks_read() == sharded.num_blocks
    sharded.reset_stats()
    assert sharded.stats_snapshot().blocks_read == 0
    assert sharded.shard_blocks_read() == (0,) * NUM_SHARDS


def test_note_external_read_attributed(sharded):
    size = sharded.block_size_bytes(3)
    sharded.note_external_read(1, size, bytes_blocks=1, block_indices=(3,))
    served = 3 % NUM_SHARDS
    assert sharded.shard_blocks_read()[served] == 1
    stats = sharded.stats_snapshot()
    assert stats.blocks_read == 1
    assert stats.bytes_blocks_read == 1


def test_note_external_read_checks_sizes(sharded):
    with pytest.raises(ExecutionError, match="on-disk size"):
        sharded.note_external_read(1, 1, block_indices=(0,))
    with pytest.raises(ExecutionError, match="entries"):
        sharded.note_external_read(2, 100, block_indices=(0,))
    with pytest.raises(ExecutionError, match="non-negative"):
        sharded.note_external_read(-1, 0)


def test_note_external_read_unattributed(sharded):
    sharded.note_external_read(2, 100)
    stats = sharded.stats_snapshot()
    assert stats.blocks_read == 2
    assert stats.bytes_read == 100
    assert sharded.shard_blocks_read() == (0,) * NUM_SHARDS


def test_cache_split_across_shards(sharded):
    assert not sharded.has_cache
    assert sharded.cache_stats() is None
    sharded.ensure_cache(sharded.total_bytes * 2)
    assert sharded.has_cache
    sharded.read_block(0)
    sharded.read_block(0)
    stats = sharded.cache_stats()
    assert stats is not None and stats["hits"] >= 1
    with pytest.raises(ExecutionError, match="positive"):
        sharded.ensure_cache(0)


def test_prefetch_routes_to_serving_shard(sharded):
    sharded.ensure_cache(sharded.total_bytes * 2)
    assert sharded.prefetch_block(5)
    assert sharded.stats_snapshot().blocks_read == 0  # physical only


# ------------------------------------------------- runner fault injection

PATTERNS = ["^th.*", ".*ing$", "^[aeiou].*"]


def make_jobs():
    return [wordcount_job(f"wc{i}", p) for i, p in enumerate(PATTERNS)]


@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
def test_mid_scan_shard_loss_is_invisible(tmp_path, lines, backend):
    """Outputs and logical I/O must not change when a shard dies
    mid-scan, on every map backend (workers re-route via the on-disk
    down marker)."""
    config = ExecutionConfig(blocks_per_segment=3, map_backend=backend,
                            map_workers=2)
    arrivals = {"wc1": 1, "wc2": 2}
    baseline_store = ShardedBlockStore.create(
        tmp_path / "base", lines, 4_000,
        num_shards=NUM_SHARDS, replication=REPLICATION)
    baseline = SharedScanRunner(baseline_store, config).run(
        make_jobs(), arrivals)

    drill_store = ShardedBlockStore.create(
        tmp_path / "drill", lines, 4_000,
        num_shards=NUM_SHARDS, replication=REPLICATION)

    def lose_shard(iteration, run_states):
        if iteration == 1 and 0 not in drill_store.down_shards():
            drill_store.fail_shard(0)

    drilled = SharedScanRunner(drill_store, config).run(
        make_jobs(), arrivals, on_iteration_end=lose_shard)

    for job_id in ("wc0", "wc1", "wc2"):
        assert (drilled.results[job_id].output
                == baseline.results[job_id].output)
    assert drilled.blocks_read == baseline.blocks_read
    assert drilled.bytes_read == baseline.bytes_read
    assert drill_store.stats_snapshot().replica_fallback_reads > 0
    assert drill_store.shard_blocks_read()[0] \
        < baseline_store.shard_blocks_read()[0]


def test_fifo_runner_on_sharded_store(tmp_path, lines):
    sharded = ShardedBlockStore.create(
        tmp_path / "shards", lines, 4_000,
        num_shards=NUM_SHARDS, replication=REPLICATION)
    single = BlockStore.create(tmp_path / "corpus", lines,
                               block_size_bytes=4_000)
    config = ExecutionConfig()
    a = FifoLocalRunner(sharded, config).run(make_jobs())
    b = FifoLocalRunner(single, config).run(make_jobs())
    for job_id in ("wc0", "wc1", "wc2"):
        assert a.results[job_id].output == b.results[job_id].output
    assert a.blocks_read == b.blocks_read
