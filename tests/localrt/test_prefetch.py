"""Read-ahead prefetcher tests: warming, pacing, clean shutdown.

The acceptance-critical property lives here too: when a mapper raises
mid-wave, the runner's ``finally`` must close the prefetcher so no
background thread outlives the run (fault-injection tests below).
"""

import threading
import time

import pytest

from repro.common.config import ExecutionConfig
from repro.common.errors import ExecutionError
from repro.localrt.api import LocalJob, Mapper, SumReducer
from repro.localrt.cache import BlockCache
from repro.localrt.jobs import wordcount_job
from repro.localrt.prefetch import ReadAheadPrefetcher
from repro.localrt.runners import FifoLocalRunner, SharedScanRunner
from repro.localrt.storage import BlockStore


def lines(n, width=30):
    return [f"word{i % 7} line {i:04d} ".ljust(width, "x") for i in range(n)]


def make_store(tmp_path, *, capacity=10_000_000):
    return BlockStore.create(tmp_path / "s", lines(120), block_size_bytes=300,
                             cache=BlockCache(capacity))


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


def prefetch_threads():
    return [t for t in threading.enumerate() if t.name == "s3-prefetch"]


class ExplodingMapper(Mapper):
    """Raises once the poisoned block's text is seen."""

    def __init__(self, poison: str) -> None:
        self.poison = poison

    def map(self, key, value):
        if self.poison in value:
            raise RuntimeError("mapper exploded")
        yield ("n", 1)


def test_requires_cache(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(10), block_size_bytes=300)
    with pytest.raises(ExecutionError, match="BlockCache"):
        ReadAheadPrefetcher(store, depth=2)


def test_depth_validated(tmp_path):
    store = make_store(tmp_path)
    with pytest.raises(ExecutionError, match="depth"):
        ReadAheadPrefetcher(store, depth=0)


def test_warms_scheduled_blocks(tmp_path):
    store = make_store(tmp_path)
    with ReadAheadPrefetcher(store, depth=store.num_blocks) as prefetcher:
        prefetcher.schedule(range(4))
        assert wait_until(lambda: all(i in store.cache for i in range(4)))
    assert store.stats.prefetched_blocks == 4
    # Prefetching is not a logical read and not a demand miss.
    assert store.stats.blocks_read == 0
    assert store.stats.cache_misses == 0
    store.read_block(0)
    assert store.stats.cache_hits == 1


def test_pacing_never_runs_more_than_depth_ahead(tmp_path):
    store = make_store(tmp_path)
    with ReadAheadPrefetcher(store, depth=3) as prefetcher:
        prefetcher.schedule(range(store.num_blocks))
        wait_until(lambda: store.stats.prefetched_blocks >= 3)
        time.sleep(0.05)  # give the worker a chance to (wrongly) run ahead
        assert store.stats.prefetched_blocks <= 3
        # As demand reads progress, the window opens.
        for i in range(6):
            store.read_block(i)
        assert wait_until(lambda: store.stats.prefetched_blocks >= 6)


def test_schedule_dedups_pending(tmp_path):
    store = make_store(tmp_path)
    prefetcher = ReadAheadPrefetcher(store, depth=1)
    try:
        queued = prefetcher.schedule([5, 5, 6, 5])
        assert queued == 2
    finally:
        prefetcher.close()


def test_close_is_idempotent_and_joins_thread(tmp_path):
    store = make_store(tmp_path)
    prefetcher = ReadAheadPrefetcher(store, depth=2)
    assert len(prefetch_threads()) == 1
    prefetcher.close()
    prefetcher.close()
    assert prefetcher.closed
    assert not prefetch_threads()
    with pytest.raises(ExecutionError, match="closed"):
        prefetcher.schedule([0])


def test_prefetch_error_recorded_not_raised(tmp_path):
    store = make_store(tmp_path)
    prefetcher = ReadAheadPrefetcher(store, depth=4)
    try:
        with pytest.raises(ExecutionError):
            # Out-of-range indices surface on the demand path, never from
            # the background thread...
            store.read_block(10_000)
        prefetcher.schedule([10_000])
        assert wait_until(lambda: prefetcher.error is not None)
        assert isinstance(prefetcher.error, ExecutionError)
    finally:
        prefetcher.close()
    assert not prefetch_threads()


def test_runner_rejects_prefetch_without_cache(tmp_path):
    store = BlockStore.create(tmp_path / "s", lines(10), block_size_bytes=300)
    # Legacy kwarg path: still validated until the shim is removed.
    with pytest.warns(DeprecationWarning), \
            pytest.raises(ExecutionError, match="BlockCache"):
        FifoLocalRunner(store, prefetch_depth=2)
    with pytest.warns(DeprecationWarning), \
            pytest.raises(ExecutionError, match="BlockCache"):
        SharedScanRunner(store, prefetch_depth=2)


@pytest.mark.parametrize("runner_cls", [FifoLocalRunner, SharedScanRunner])
def test_mapper_fault_mid_wave_shuts_prefetcher_down(tmp_path, runner_cls):
    """Fault injection: a mapper raising mid-wave must not leak the
    prefetch thread (runner ``finally`` closes it)."""
    store = make_store(tmp_path)
    poisoned = store.read_block(store.num_blocks // 2).split()[0]
    store.reset_stats()
    job = LocalJob(job_id="boom", mapper=ExplodingMapper(poisoned),
                   reducer=SumReducer())
    config = ExecutionConfig(cache_capacity_bytes=10_000_000,
                             prefetch_depth=3)
    runner = runner_cls(store, config)
    with pytest.raises(RuntimeError, match="mapper exploded"):
        runner.run([job])
    assert not prefetch_threads(), "prefetch thread leaked after fault"
    # The runner stays usable after the fault.
    report = runner_cls(store, config).run([wordcount_job("ok", ".*")])
    assert report.results["ok"].output
    assert not prefetch_threads()


class SlowCountMapper(Mapper):
    """Counts records, sleeping per call so the map wave dominates I/O.

    The sleep releases the GIL, guaranteeing the prefetch thread gets
    scheduled even on a single-core host — without it this test races
    the warmer against the demand reads.
    """

    def map(self, key, value):
        time.sleep(0.002)
        yield ("n", 1)


def test_shared_scan_prefetches_next_segment(tmp_path):
    store = make_store(tmp_path)
    jobs = [LocalJob(job_id=j, mapper=SlowCountMapper(), reducer=SumReducer())
            for j in ("a", "b")]
    report = SharedScanRunner(
        store,
        ExecutionConfig(blocks_per_segment=4,
                        cache_capacity_bytes=10_000_000,
                        prefetch_depth=4)).run(jobs)
    assert report.io.prefetched_blocks > 0
    assert report.blocks_read == store.num_blocks
    # Every block the prefetcher loaded was a block the scan then hit.
    assert report.io.cache_hits > 0


def test_fifo_prefetch_keeps_logical_counters(tmp_path):
    plain = BlockStore.create(tmp_path / "plain", lines(120),
                              block_size_bytes=300)
    cached = BlockStore.create(tmp_path / "cached", lines(120),
                               block_size_bytes=300,
                               cache=BlockCache(10_000_000))
    jobs = [wordcount_job(f"wc{i}", ".*") for i in range(3)]
    base = FifoLocalRunner(plain).run(jobs)
    accel = FifoLocalRunner(
        cached,
        ExecutionConfig(cache_capacity_bytes=10_000_000,
                        prefetch_depth=4)).run(
        [wordcount_job(f"wc{i}", ".*") for i in range(3)])
    assert accel.blocks_read == base.blocks_read
    assert accel.bytes_read == base.bytes_read
    assert accel.io.physical_blocks_read < base.io.physical_blocks_read
    for job_id in base.results:
        assert accel.results[job_id].output == base.results[job_id].output
