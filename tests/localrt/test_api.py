"""Local runtime API tests."""

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.api import (
    BlockData,
    IdentityReducer,
    JobResult,
    LocalJob,
    SumReducer,
    default_partitioner,
)
from repro.localrt.jobs import PatternWordCount
from repro.localrt.records import split_records


def test_local_job_validation():
    mapper, reducer = PatternWordCount(".*"), SumReducer()
    with pytest.raises(ExecutionError):
        LocalJob(job_id="", mapper=mapper, reducer=reducer)
    with pytest.raises(ExecutionError):
        LocalJob(job_id="j", mapper=mapper, reducer=reducer, num_partitions=0)


def test_sum_reducer():
    assert list(SumReducer().reduce("k", [1, 2, 3])) == [("k", 6)]


def test_identity_reducer():
    assert list(IdentityReducer().reduce("k", ["a", "b"])) == [
        ("k", "a"), ("k", "b")]


def test_partitioner_stable_for_strings():
    assert (default_partitioner("hello", 7)
            == default_partitioner("hello", 7))
    assert 0 <= default_partitioner("hello", 7) < 7


def test_partitioner_distributes():
    partitions = {default_partitioner(f"word{i}", 8) for i in range(100)}
    assert len(partitions) > 1


def test_partitioner_ints():
    assert default_partitioner(42, 5) == 42 % 5


def test_job_result_as_dict():
    result = JobResult(job_id="j", output=[("a", 1), ("b", 2)])
    assert result.as_dict() == {"a": 1, "b": 2}


def test_job_result_as_dict_duplicate_keys():
    result = JobResult(job_id="j", output=[("a", 1), ("a", 2)])
    with pytest.raises(ExecutionError, match="duplicate"):
        result.as_dict()


# -------------------------------------------------------------- BlockData

def test_blockdata_is_bytes_with_memoized_views():
    block = BlockData(b"the cat\nsat down\n")
    assert isinstance(block, bytes)
    assert block.text() == "the cat\nsat down\n"
    assert block.text() is block.text()            # memoized
    assert block.lines() == [b"the cat", b"sat down"]
    assert block.lines() is block.lines()
    assert block.token_counts() is block.token_counts()
    assert dict(block.token_counts()) == {"the": 1, "cat": 1,
                                          "sat": 1, "down": 1}


def test_blockdata_line_count_matches_split_records():
    for raw in (b"", b"\n", b"a", b"a\n", b"a\nb", b"a\nb\n", b"\n\n",
                b"x\n\ny\n"):
        block = BlockData(raw)
        assert block.line_count() == len(split_records(raw.decode())), raw
        assert block.line_count() == len(block.lines())


def test_blockdata_token_counts_match_per_line_tokenization():
    # Newlines are whitespace, so one whole-block split must equal the
    # sum of per-line splits — the equivalence the batched wordcount
    # kernel relies on.
    from collections import Counter
    block = BlockData("the cat\n sat  down\nthe end\n".encode())
    per_line = Counter()
    for line in block.lines():
        per_line.update(line.decode("utf-8").split())
    assert block.token_counts() == per_line
    # First-occurrence key order also matches (insertion order).
    assert list(block.token_counts()) == ["the", "cat", "sat", "down", "end"]


def test_blockdata_memo_computes_once_per_key():
    block = BlockData(b"x\n")
    calls = []

    def compute():
        calls.append(1)
        return [1, 2, 3]

    first = block.memo(("k", 1), compute)
    second = block.memo(("k", 1), compute)
    assert first is second and calls == [1]
    other = block.memo(("k", 2), compute)
    assert other is not first and len(calls) == 2
