"""Local runtime API tests."""

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.api import (
    IdentityReducer,
    JobResult,
    LocalJob,
    SumReducer,
    default_partitioner,
)
from repro.localrt.jobs import PatternWordCount


def test_local_job_validation():
    mapper, reducer = PatternWordCount(".*"), SumReducer()
    with pytest.raises(ExecutionError):
        LocalJob(job_id="", mapper=mapper, reducer=reducer)
    with pytest.raises(ExecutionError):
        LocalJob(job_id="j", mapper=mapper, reducer=reducer, num_partitions=0)


def test_sum_reducer():
    assert list(SumReducer().reduce("k", [1, 2, 3])) == [("k", 6)]


def test_identity_reducer():
    assert list(IdentityReducer().reduce("k", ["a", "b"])) == [
        ("k", "a"), ("k", "b")]


def test_partitioner_stable_for_strings():
    assert (default_partitioner("hello", 7)
            == default_partitioner("hello", 7))
    assert 0 <= default_partitioner("hello", 7) < 7


def test_partitioner_distributes():
    partitions = {default_partitioner(f"word{i}", 8) for i in range(100)}
    assert len(partitions) > 1


def test_partitioner_ints():
    assert default_partitioner(42, 5) == 42 % 5


def test_job_result_as_dict():
    result = JobResult(job_id="j", output=[("a", 1), ("b", 2)])
    assert result.as_dict() == {"a": 1, "b": 2}


def test_job_result_as_dict_duplicate_keys():
    result = JobResult(job_id="j", output=[("a", 1), ("a", 2)])
    with pytest.raises(ExecutionError, match="duplicate"):
        result.as_dict()
