"""Map/combine/shuffle/reduce engine tests."""

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.api import BlockData, BlockMapper, LocalJob, SumReducer
from repro.localrt.counters import Counters
from repro.localrt.engine import (
    JobRunState,
    collect_map_outputs,
    count_pending_values,
    run_map_on_block,
    run_reduce,
)
from repro.localrt.jobs import PatternWordCount, PatternWordCountBlock
from repro.localrt.records import DelimitedReader, TextLineReader


def make_state(pattern=".*", combiner=False):
    job = LocalJob(job_id="j", mapper=PatternWordCount(pattern),
                   reducer=SumReducer(),
                   combiner=SumReducer() if combiner else None,
                   num_partitions=3)
    return JobRunState(job)


def test_map_counts_records():
    state = make_state()
    run_map_on_block([state], TextLineReader(), "a b\nc\n")
    assert state.map_input_records == 2
    assert state.map_output_records == 3


def test_shared_block_feeds_all_jobs():
    s1, s2 = make_state("^a.*"), make_state("^b.*")
    run_map_on_block([s1, s2], TextLineReader(), "aa bb\naa\n")
    assert s1.map_output_records == 2  # two "aa"
    assert s2.map_output_records == 1  # one "bb"
    assert s1.map_input_records == s2.map_input_records == 2


def test_combiner_shrinks_shuffle():
    plain, combined = make_state(), make_state(combiner=True)
    text = "x x x y\nx y\n"
    run_map_on_block([plain], TextLineReader(), text)
    run_map_on_block([combined], TextLineReader(), text)
    assert count_pending_values(plain) == 6
    assert count_pending_values(combined) == 2  # one partial sum per key
    assert run_reduce(plain) == run_reduce(combined)


def test_reduce_sorted_within_partition():
    state = make_state()
    run_map_on_block([state], TextLineReader(), "b a c a\n")
    output = run_reduce(state)
    assert dict(output) == {"a": 2, "b": 1, "c": 1}
    # Keys within each partition appear in sorted order.
    from repro.localrt.api import default_partitioner
    by_partition = {}
    for key, _ in output:
        by_partition.setdefault(default_partitioner(key, 3), []).append(key)
    for keys in by_partition.values():
        assert keys == sorted(keys)


def test_empty_participants_rejected():
    with pytest.raises(ExecutionError):
        run_map_on_block([], TextLineReader(), "x\n")


def test_multiple_blocks_accumulate():
    state = make_state()
    run_map_on_block([state], TextLineReader(), "x\n")
    run_map_on_block([state], TextLineReader(), "x y\n")
    assert dict(run_reduce(state)) == {"x": 2, "y": 1}


# ------------------------------------------------------ batched protocol

class UpperBlock(BlockMapper):
    """Minimal batched kernel: per-record ``(LINE, 1)`` emission."""

    def map(self, key, value):
        yield (str(value).upper(), 1)

    def map_block(self, data, base_offset):
        block = data if isinstance(data, BlockData) else BlockData(data)
        outputs = [(line.decode("utf-8").upper(), 1)
                   for line in block.lines()]
        return block.line_count(), outputs, None


class MiscountingBlock(UpperBlock):
    """A broken kernel that disagrees with the reader's record count."""

    def map_block(self, data, base_offset):
        count, outputs, counters = super().map_block(data, base_offset)
        return count + 1, outputs, counters


def upper_state(mapper, combiner=False):
    job = LocalJob(job_id="u", mapper=mapper, reducer=SumReducer(),
                   combiner=SumReducer() if combiner else None)
    return JobRunState(job)


def test_batched_str_and_bytes_inputs_identical():
    for block in ("aa\nbb\naa\n", b"aa\nbb\naa\n", BlockData(b"aa\nbb\naa\n")):
        state = upper_state(UpperBlock())
        run_map_on_block([state], TextLineReader(), block)
        assert state.map_input_records == 3
        assert dict(run_reduce(state)) == {"AA": 2, "BB": 1}


def test_batched_and_per_record_jobs_share_one_wave():
    batched = upper_state(UpperBlock(), combiner=True)
    per_record = make_state()  # plain Mapper, never batched
    run_map_on_block([batched, per_record], TextLineReader(), "x\ny\nx\n")
    assert batched.map_input_records == per_record.map_input_records == 3
    assert count_pending_values(batched) == 2   # combiner ran
    assert dict(run_reduce(batched)) == {"X": 2, "Y": 1}
    assert dict(run_reduce(per_record)) == {"x": 2, "y": 1}


def test_unsupported_reader_falls_back_with_deprecation_warning():
    state = upper_state(UpperBlock())
    # The default BlockMapper kernel only vouches for TextLineReader.
    reader = DelimitedReader("|")
    with pytest.warns(DeprecationWarning, match="per-record fallback"):
        count, outputs, _ = collect_map_outputs(
            [state.job], reader, "a|b\n", 0)
    assert count == 1
    # The per-record path fed the mapper DelimitedReader's field tuples.
    assert outputs[0] == [("('A', 'B')", 1)]


def test_record_count_mismatch_raises():
    bad = upper_state(MiscountingBlock())
    witness = make_state()  # per-record job pins the true count
    with pytest.raises(ExecutionError, match="reported"):
        run_map_on_block([witness, bad], TextLineReader(), "x\ny\n")


def test_combined_output_skips_engine_combine():
    class PreCombined(UpperBlock):
        combined_output = True

    # Two equal keys stay two records when combined_output vouches the
    # kernel's output is already combined (here it is not — this test
    # only observes the skip).
    state = upper_state(PreCombined(), combiner=True)
    run_map_on_block([state], TextLineReader(), "x\nx\n")
    assert count_pending_values(state) == 2
    # Without the flag the engine's combiner collapses them.
    state = upper_state(UpperBlock(), combiner=True)
    run_map_on_block([state], TextLineReader(), "x\nx\n")
    assert count_pending_values(state) == 1


def test_batched_counters_are_returned_not_accumulated():
    class CountingBlock(UpperBlock):
        def map_block(self, data, base_offset):
            count, outputs, _ = super().map_block(data, base_offset)
            counters = Counters()
            counters.increment("g", "blocks", 1)
            return count, outputs, counters

    state = upper_state(CountingBlock())
    run_map_on_block([state], TextLineReader(), "x\n")
    run_map_on_block([state], TextLineReader(), "y\n")
    assert state.counters.value("g", "blocks") == 2


def test_wave_shares_one_blockdata_tokenization():
    """Both wordcount kernels in a wave must see the same BlockData and
    reuse its memoized token counts (one tokenization per block)."""
    seen = []
    original = BlockData.token_counts

    def spying(self):
        result = original(self)
        seen.append((id(self), id(result)))
        return result

    s1 = upper_state(PatternWordCountBlock("^a.*"), combiner=True)
    s2 = upper_state(PatternWordCountBlock("^b.*"), combiner=True)
    try:
        BlockData.token_counts = spying
        run_map_on_block([s1, s2], TextLineReader(), b"aa bb\naa\n")
    finally:
        BlockData.token_counts = original
    # Same BlockData object, and the second lookup returned the
    # memoized Counter (identical object — tokenized once).
    assert len(seen) == 2 and seen[0] == seen[1]
    assert s1.map_output_records == 1  # ("aa", 2) pre-combined
    assert s2.map_output_records == 1  # ("bb", 1)
