"""Map/combine/shuffle/reduce engine tests."""

import pytest

from repro.common.errors import ExecutionError
from repro.localrt.api import LocalJob, SumReducer
from repro.localrt.engine import (
    JobRunState,
    count_pending_values,
    run_map_on_block,
    run_reduce,
)
from repro.localrt.jobs import PatternWordCount
from repro.localrt.records import TextLineReader


def make_state(pattern=".*", combiner=False):
    job = LocalJob(job_id="j", mapper=PatternWordCount(pattern),
                   reducer=SumReducer(),
                   combiner=SumReducer() if combiner else None,
                   num_partitions=3)
    return JobRunState(job)


def test_map_counts_records():
    state = make_state()
    run_map_on_block([state], TextLineReader(), "a b\nc\n")
    assert state.map_input_records == 2
    assert state.map_output_records == 3


def test_shared_block_feeds_all_jobs():
    s1, s2 = make_state("^a.*"), make_state("^b.*")
    run_map_on_block([s1, s2], TextLineReader(), "aa bb\naa\n")
    assert s1.map_output_records == 2  # two "aa"
    assert s2.map_output_records == 1  # one "bb"
    assert s1.map_input_records == s2.map_input_records == 2


def test_combiner_shrinks_shuffle():
    plain, combined = make_state(), make_state(combiner=True)
    text = "x x x y\nx y\n"
    run_map_on_block([plain], TextLineReader(), text)
    run_map_on_block([combined], TextLineReader(), text)
    assert count_pending_values(plain) == 6
    assert count_pending_values(combined) == 2  # one partial sum per key
    assert run_reduce(plain) == run_reduce(combined)


def test_reduce_sorted_within_partition():
    state = make_state()
    run_map_on_block([state], TextLineReader(), "b a c a\n")
    output = run_reduce(state)
    assert dict(output) == {"a": 2, "b": 1, "c": 1}
    # Keys within each partition appear in sorted order.
    from repro.localrt.api import default_partitioner
    by_partition = {}
    for key, _ in output:
        by_partition.setdefault(default_partitioner(key, 3), []).append(key)
    for keys in by_partition.values():
        assert keys == sorted(keys)


def test_empty_participants_rejected():
    with pytest.raises(ExecutionError):
        run_map_on_block([], TextLineReader(), "x\n")


def test_multiple_blocks_accumulate():
    state = make_state()
    run_map_on_block([state], TextLineReader(), "x\n")
    run_map_on_block([state], TextLineReader(), "x y\n")
    assert dict(run_reduce(state)) == {"x": 2, "y": 1}
