"""Event queue ordering and cancellation tests."""

import pytest

from repro.simengine.events import EventQueue


def _noop(_t: float) -> None:
    pass


def test_pop_orders_by_time():
    q = EventQueue()
    q.push(2.0, _noop, label="b")
    q.push(1.0, _noop, label="a")
    q.push(3.0, _noop, label="c")
    assert [q.pop().label for _ in range(3)] == ["a", "b", "c"]


def test_fifo_within_same_time():
    q = EventQueue()
    for name in "abc":
        q.push(1.0, _noop, label=name)
    assert [q.pop().label for _ in range(3)] == ["a", "b", "c"]


def test_priority_breaks_time_ties():
    q = EventQueue()
    q.push(1.0, _noop, priority=5, label="low")
    q.push(1.0, _noop, priority=0, label="high")
    assert q.pop().label == "high"


def test_cancelled_events_skipped():
    q = EventQueue()
    ev = q.push(1.0, _noop, label="cancelled")
    q.push(2.0, _noop, label="kept")
    ev.cancel()
    assert q.pop().label == "kept"


def test_len_excludes_cancelled():
    q = EventQueue()
    ev = q.push(1.0, _noop)
    q.push(2.0, _noop)
    assert len(q) == 2
    ev.cancel()
    assert len(q) == 1


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev = q.push(1.0, _noop)
    q.push(5.0, _noop)
    ev.cancel()
    assert q.peek_time() == 5.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None
    assert not EventQueue()


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()
