"""Discrete-event simulator core tests."""

import pytest

from repro.common.errors import SimulationError
from repro.simengine.simulator import Simulator


def test_run_executes_in_time_order():
    sim = Simulator()
    fired = []
    sim.at(2.0, lambda t: fired.append(("b", t)))
    sim.at(1.0, lambda t: fired.append(("a", t)))
    end = sim.run()
    assert fired == [("a", 1.0), ("b", 2.0)]
    assert end == 2.0


def test_after_is_relative():
    sim = Simulator()
    fired = []
    sim.at(5.0, lambda t: sim.after(3.0, lambda t2: fired.append(t2)))
    sim.run()
    assert fired == [8.0]


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.at(10.0, lambda t: None)
    sim.run()
    with pytest.raises(SimulationError, match="past"):
        sim.at(5.0, lambda t: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1.0, lambda t: None)


def test_nan_time_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.at(float("nan"), lambda t: None)


def test_run_until_horizon():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.at(t, lambda now: fired.append(now))
    end = sim.run(until=2.5)
    assert fired == [1.0, 2.0]
    assert end == 2.5
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_events_cascade():
    sim = Simulator()
    fired = []

    def chain(n):
        def fire(t):
            fired.append(n)
            if n < 3:
                sim.after(1.0, chain(n + 1))
        return fire

    sim.at(0.0, chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_every_recurs_until_stopped():
    sim = Simulator()
    ticks = []

    def on_tick(t):
        ticks.append(t)
        return len(ticks) >= 3  # stop after three firings

    sim.every(2.0, on_tick)
    sim.run()
    assert ticks == [2.0, 4.0, 6.0]


def test_every_with_start_delay():
    sim = Simulator()
    ticks = []
    sim.every(5.0, lambda t: ticks.append(t) or len(ticks) >= 2,
              start_delay=1.0)
    sim.run()
    assert ticks == [1.0, 6.0]


def test_every_requires_positive_interval():
    with pytest.raises(SimulationError):
        Simulator().every(0.0, lambda t: True)


def test_step_single_event():
    sim = Simulator()
    fired = []
    sim.at(1.0, lambda t: fired.append(t))
    sim.at(2.0, lambda t: fired.append(t))
    assert sim.step() is True
    assert fired == [1.0]
    assert sim.step() and not sim.step()


def test_cancelled_event_not_run():
    sim = Simulator()
    fired = []
    handle = sim.at(1.0, lambda t: fired.append("cancelled"))
    sim.at(2.0, lambda t: fired.append("kept"))
    handle.cancel()
    sim.run()
    assert fired == ["kept"]


def test_max_events_guard():
    sim = Simulator(max_events=10)

    def loop(t):
        sim.after(1.0, loop)

    sim.at(0.0, loop)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run()


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested(t):
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(str(exc))

    sim.at(0.0, nested)
    sim.run()
    assert errors and "re-entrant" in errors[0]


def test_events_processed_counter():
    sim = Simulator()
    for t in range(5):
        sim.at(float(t), lambda now: None)
    sim.run()
    assert sim.events_processed == 5
