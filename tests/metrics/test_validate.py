"""Trace validator tests."""

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import ExperimentError
from repro.common.tracelog import TraceLog
from repro.metrics.validate import validate_trace


def valid_trace() -> TraceLog:
    log = TraceLog()
    log.record(0.0, "job.submit", "j0")
    log.record(0.0, "task.start.map", "a", node="n0", duration=2.0)
    log.record(2.0, "task.finish.map", "a", node="n0")
    log.record(2.0, "task.start.reduce", "r", node="n0", duration=1.0)
    log.record(3.0, "task.finish.reduce", "r", node="n0")
    log.record(3.0, "job.complete", "j0")
    return log


def test_valid_trace_passes():
    report = validate_trace(valid_trace(),
                            ClusterConfig(num_nodes=1, rack_sizes=(1,)))
    assert report.ok
    report.raise_if_invalid()  # no-op


def test_unended_attempt_flagged():
    log = TraceLog()
    log.record(0.0, "task.start.map", "a", node="n0")
    report = validate_trace(log)
    assert any("never ended" in v for v in report.violations)


def test_end_without_start_flagged():
    log = TraceLog()
    log.record(1.0, "task.finish.map", "ghost", node="n0")
    report = validate_trace(log)
    assert any("end without start" in v for v in report.violations)


def test_slot_overcommit_flagged():
    log = TraceLog()
    log.record(0.0, "task.start.map", "a", node="n0")
    log.record(0.0, "task.start.map", "b", node="n0")
    log.record(1.0, "task.finish.map", "a", node="n0")
    log.record(1.0, "task.finish.map", "b", node="n0")
    config = ClusterConfig(num_nodes=1, rack_sizes=(1,), map_slots_per_node=1)
    report = validate_trace(log, config)
    assert any("exceed 1 slots" in v for v in report.violations)
    # With 2 slots it's fine.
    roomy = ClusterConfig(num_nodes=1, rack_sizes=(1,), map_slots_per_node=2)
    assert validate_trace(log, roomy).ok


def test_start_on_offline_node_flagged():
    log = TraceLog()
    log.record(0.0, "node.offline", "n0")
    log.record(1.0, "task.start.map", "a", node="n0")
    log.record(2.0, "task.finish.map", "a", node="n0")
    report = validate_trace(log)
    assert any("offline node" in v for v in report.violations)


def test_incomplete_job_flagged():
    log = TraceLog()
    log.record(0.0, "job.submit", "j0")
    report = validate_trace(log)
    assert any("never completed" in v for v in report.violations)


def test_double_completion_flagged():
    log = TraceLog()
    log.record(0.0, "job.submit", "j0")
    log.record(1.0, "job.complete", "j0")
    log.record(2.0, "job.complete", "j0")
    report = validate_trace(log)
    assert any("completed twice" in v for v in report.violations)


def test_raise_if_invalid():
    log = TraceLog()
    log.record(0.0, "job.submit", "j0")
    with pytest.raises(ExperimentError, match="trace invalid"):
        validate_trace(log).raise_if_invalid()


@pytest.mark.parametrize("scheduler_kind", ["fifo", "mrshare", "s3",
                                            "s3-faulty"])
def test_real_runs_validate(scheduler_kind, small_cluster_config,
                            small_dfs_config, fast_profile, job_factory):
    """Every scheduler's real trace satisfies the invariants —
    including under fault injection."""
    from repro.mapreduce.costmodel import CostModel
    from repro.mapreduce.driver import SimulationDriver
    from repro.mapreduce.faults import FaultModel
    from repro.schedulers.fifo import FifoScheduler
    from repro.schedulers.mrshare import MRShareScheduler
    from repro.schedulers.s3 import S3Scheduler

    faults = None
    if scheduler_kind == "fifo":
        scheduler = FifoScheduler()
    elif scheduler_kind == "mrshare":
        scheduler = MRShareScheduler.single_batch(2)
    else:
        scheduler = S3Scheduler()
        if scheduler_kind == "s3-faulty":
            faults = FaultModel(task_failure_prob=0.15, max_attempts=30,
                                seed=4)
    driver = SimulationDriver(
        scheduler, cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.5, subjob_overhead_s=0.1),
        fault_model=faults)
    driver.register_file("f", 64.0 * 24)
    driver.submit_all(job_factory(fast_profile, 2), [0.0, 5.0])
    result = driver.run()
    validate_trace(result.trace, small_cluster_config).raise_if_invalid()
