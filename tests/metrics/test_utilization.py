"""Utilization analytics tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.common.tracelog import TraceLog
from repro.metrics.utilization import (
    busy_slots_series,
    render_gantt,
    render_utilization_strip,
    slot_utilization,
    task_intervals,
)


def synthetic_trace() -> TraceLog:
    """Two map tasks on two nodes: n0 busy 0-10, n1 busy 5-10."""
    log = TraceLog()
    log.record(0.0, "task.start.map", "a", node="n0", duration=10.0)
    log.record(5.0, "task.start.map", "b", node="n1", duration=5.0)
    log.record(10.0, "task.finish.map", "a", node="n0")
    log.record(10.0, "task.finish.map", "b", node="n1")
    return log


def test_task_intervals_extracted():
    intervals = task_intervals(synthetic_trace())
    assert len(intervals) == 2
    by_id = {i.attempt_id: i for i in intervals}
    assert by_id["a"].duration == 10.0
    assert by_id["b"].start == 5.0


def test_failed_and_killed_count_as_occupancy():
    log = TraceLog()
    log.record(0.0, "task.start.map", "a", node="n0", duration=10.0)
    log.record(4.0, "task.fail.map", "a", node="n0")
    log.record(5.0, "task.start.map", "b", node="n1", duration=10.0)
    log.record(6.0, "task.killed.map", "b", node="n1")
    intervals = task_intervals(log)
    assert {(i.attempt_id, i.duration) for i in intervals} == {
        ("a", 4.0), ("b", 1.0)}


def test_unmatched_end_rejected():
    log = TraceLog()
    log.record(1.0, "task.finish.map", "ghost", node="n0")
    with pytest.raises(ExperimentError, match="unopened"):
        task_intervals(log)


def test_never_closed_rejected():
    log = TraceLog()
    log.record(0.0, "task.start.map", "a", node="n0", duration=1.0)
    with pytest.raises(ExperimentError, match="never closed"):
        task_intervals(log)


def test_slot_utilization_fraction():
    # 2 slots over 10s window; busy = 10 + 5 = 15 slot-seconds of 20.
    assert slot_utilization(synthetic_trace(), 2) == pytest.approx(0.75)


def test_slot_utilization_with_window():
    util = slot_utilization(synthetic_trace(), 2, start=0.0, end=5.0)
    assert util == pytest.approx(0.5)  # only task a busy in [0,5)


def test_slot_utilization_validation():
    with pytest.raises(ExperimentError):
        slot_utilization(synthetic_trace(), 0)


def test_busy_slots_series_shape():
    times, series = busy_slots_series(synthetic_trace(), bins=10)
    assert len(times) == len(series) == 10
    assert series[0] == pytest.approx(1.0)   # only task a
    assert series[-1] == pytest.approx(2.0)  # both tasks


def test_render_strip_and_gantt():
    strip = render_utilization_strip(synthetic_trace(), 2, width=20)
    assert len(strip) == 20
    gantt = render_gantt(synthetic_trace(), width=40)
    assert "n0" in gantt and "n1" in gantt and "#" in gantt


def test_empty_trace_renders_placeholder():
    assert render_gantt(TraceLog()) == "(no tasks)"
    assert busy_slots_series(TraceLog()) == ([], [])


def test_real_simulation_utilization(small_cluster_config, small_dfs_config,
                                     fast_profile, job_factory):
    """A single job saturates map slots during its map phase."""
    from repro.mapreduce.costmodel import CostModel
    from repro.mapreduce.driver import SimulationDriver
    from repro.schedulers.fifo import FifoScheduler

    driver = SimulationDriver(
        FifoScheduler(), cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0))
    driver.register_file("f", 64.0 * 32)
    driver.submit_all(job_factory(fast_profile, 1), [0.0])
    result = driver.run()
    util = slot_utilization(result.trace, 8, kind="map")
    assert util > 0.95
