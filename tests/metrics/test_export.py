"""Trace export/import tests."""

import io

import pytest

from repro.common.errors import ExperimentError
from repro.common.tracelog import TraceLog
from repro.metrics.export import dump_trace, load_trace, trace_summary


def make_trace() -> TraceLog:
    log = TraceLog()
    log.record(0.0, "job.submit", "j0", file="f")
    log.record(1.0, "task.start.map", "a", node="n0", duration=2.0)
    log.record(3.0, "task.finish.map", "a", node="n0")
    log.record(3.5, "job.complete", "j0")
    return log


def test_round_trip_via_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    count = dump_trace(make_trace(), path)
    assert count == 4
    loaded = load_trace(path)
    assert len(loaded) == 4
    assert loaded[1].detail == {"node": "n0", "duration": 2.0}
    assert loaded[3].kind == "job.complete"


def test_round_trip_via_stream():
    buffer = io.StringIO()
    dump_trace(make_trace(), buffer)
    buffer.seek(0)
    loaded = load_trace(buffer)
    assert [r.kind for r in loaded] == [r.kind for r in make_trace()]


def test_blank_lines_skipped():
    loaded = load_trace(io.StringIO(
        '{"t": 0.0, "kind": "a", "subject": "x"}\n\n'
        '{"t": 1.0, "kind": "b", "subject": "y", "detail": {"n": 1}}\n'))
    assert len(loaded) == 2
    assert loaded[1].detail == {"n": 1}


def test_malformed_line_rejected():
    with pytest.raises(ExperimentError, match="bad trace line 1"):
        load_trace(io.StringIO("not json\n"))
    with pytest.raises(ExperimentError, match="bad trace line 1"):
        load_trace(io.StringIO('{"t": 0.0}\n'))


def test_summary():
    summary = trace_summary(make_trace())
    assert summary["records"] == 4
    assert summary["jobs_submitted"] == 1
    assert summary["jobs_completed"] == 1
    assert summary["map_tasks"] == 1
    assert summary["failures"] == 0
    assert summary["span"] == pytest.approx(3.5)


def test_summary_empty():
    summary = trace_summary(TraceLog())
    assert summary["records"] == 0 and summary["span"] == 0.0


def test_real_run_round_trip(tmp_path, small_cluster_config, small_dfs_config,
                             fast_profile, job_factory):
    from repro.mapreduce.costmodel import CostModel
    from repro.mapreduce.driver import SimulationDriver
    from repro.schedulers.s3 import S3Scheduler

    driver = SimulationDriver(S3Scheduler(),
                              cluster_config=small_cluster_config,
                              dfs_config=small_dfs_config,
                              cost_model=CostModel(job_submit_overhead_s=0.0,
                                                   subjob_overhead_s=0.0))
    driver.register_file("f", 64.0 * 16)
    driver.submit_all(job_factory(fast_profile, 2), [0.0, 2.0])
    result = driver.run()
    path = tmp_path / "run.jsonl"
    dump_trace(result.trace, path)
    loaded = load_trace(path)
    assert len(loaded) == len(result.trace)
    assert trace_summary(loaded) == trace_summary(result.trace)
