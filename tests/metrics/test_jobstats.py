"""Per-job phase breakdown tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.driver import SimulationDriver
from repro.metrics.jobstats import (
    format_phase_table,
    job_phase_stats,
    mean_sharing_fraction,
)
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.s3 import S3Scheduler


def run(scheduler, small_cluster_config, small_dfs_config, jobs, arrivals,
        blocks=16):
    driver = SimulationDriver(
        scheduler, cluster_config=small_cluster_config,
        dfs_config=small_dfs_config,
        cost_model=CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0))
    driver.register_file("f", 64.0 * blocks)
    driver.submit_all(jobs, arrivals)
    return driver.run()


def test_fifo_jobs_have_zero_sharing(small_cluster_config, small_dfs_config,
                                     fast_profile, job_factory):
    result = run(FifoScheduler(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 2), [0.0, 0.0])
    stats = job_phase_stats(result)
    assert all(s.sharing_fraction == 0.0 for s in stats.values())
    assert all(s.map_tasks == 16 for s in stats.values())
    assert mean_sharing_fraction(result) == 0.0


def test_s3_simultaneous_jobs_fully_shared(small_cluster_config,
                                           small_dfs_config, fast_profile,
                                           job_factory):
    result = run(S3Scheduler(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 2), [0.0, 0.0])
    stats = job_phase_stats(result)
    assert all(s.sharing_fraction == 1.0 for s in stats.values())
    assert all(s.map_tasks == 16 for s in stats.values())


def test_s3_staggered_job_partially_shared(small_cluster_config,
                                           small_dfs_config, fast_profile,
                                           job_factory):
    """A late joiner shares until the first job finishes, then scans alone."""
    result = run(S3Scheduler(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 2), [0.0, 2.5], blocks=32)
    stats = job_phase_stats(result)
    late = stats["j1"]
    assert late.map_tasks == 32
    assert 0.0 < late.sharing_fraction < 1.0


def test_phase_decomposition_sums(small_cluster_config, small_dfs_config,
                                  fast_profile, job_factory):
    result = run(FifoScheduler(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 2), [0.0, 1.0])
    for s in job_phase_stats(result).values():
        assert s.waiting_time + s.processing_time == pytest.approx(
            s.response_time)
        assert s.waiting_time >= 0


def test_format_phase_table(small_cluster_config, small_dfs_config,
                            fast_profile, job_factory):
    result = run(S3Scheduler(), small_cluster_config, small_dfs_config,
                 job_factory(fast_profile, 2), [0.0, 0.0])
    table = format_phase_table(job_phase_stats(result))
    assert "j0" in table and "shared-scan" in table and "100%" in table


def test_format_empty_rejected():
    with pytest.raises(ExperimentError):
        format_phase_table({})
