"""TET/ART metric computation tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.mapreduce.job import JobTimeline
from repro.metrics.measures import compute_metrics


def timeline(job_id, submitted, started, completed):
    return JobTimeline(job_id=job_id, submitted=submitted,
                       first_launch=started, completed=completed)


def test_paper_example1_fifo():
    """FIFO in Example 1: TET 200, ART 140."""
    timelines = [timeline("j1", 0, 0, 100), timeline("j2", 20, 100, 200)]
    metrics = compute_metrics("FIFO", timelines)
    assert metrics.tet == 200
    assert metrics.art == 140
    assert metrics.max_response == 180
    assert metrics.mean_waiting == 40
    assert metrics.num_jobs == 2


def test_paper_example1_s3():
    """S3 in Example 1: TET 120, ART 100."""
    timelines = [timeline("j1", 0, 0, 100), timeline("j2", 20, 20, 120)]
    metrics = compute_metrics("S3", timelines)
    assert metrics.tet == 120
    assert metrics.art == 100


def test_accepts_mapping_or_iterable():
    timelines = [timeline("a", 0, 0, 10)]
    as_map = compute_metrics("x", {"a": timelines[0]})
    as_list = compute_metrics("x", timelines)
    assert as_map == as_list


def test_incomplete_job_rejected():
    incomplete = JobTimeline(job_id="a", submitted=0.0)
    with pytest.raises(ExperimentError, match="incomplete"):
        compute_metrics("x", [incomplete])


def test_empty_rejected():
    with pytest.raises(ExperimentError):
        compute_metrics("x", [])


def test_normalized_to_baseline():
    a = compute_metrics("A", [timeline("j", 0, 0, 200)])
    b = compute_metrics("B", [timeline("j", 0, 0, 100)])
    norm = a.normalized_to(b)
    assert norm.tet_ratio == 2.0
    assert norm.art_ratio == 2.0
    assert norm.scheduler == "A"


def test_tet_uses_first_submission():
    timelines = [timeline("a", 50, 50, 100), timeline("b", 60, 70, 130)]
    assert compute_metrics("x", timelines).tet == 80


def test_no_first_launch_rejected():
    """A completed-but-never-launched set has no defined mean wait; a
    silent 0.0 would read as 'every job launched instantly'."""
    never_launched = JobTimeline(job_id="a", submitted=0.0,
                                 first_launch=None, completed=10.0)
    with pytest.raises(ExperimentError, match="first launch"):
        compute_metrics("x", [never_launched])


def test_partial_first_launch_uses_only_launched_jobs():
    timelines = [timeline("a", 0, 5, 10),
                 JobTimeline(job_id="b", submitted=0.0, completed=10.0)]
    metrics = compute_metrics("x", timelines)
    assert metrics.mean_waiting == 5.0
    assert metrics.num_jobs == 2
