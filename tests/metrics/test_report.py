"""Report formatting tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.mapreduce.job import JobTimeline
from repro.metrics.measures import compute_metrics
from repro.metrics.report import format_series, format_table, normalize_all


def metrics(name, tet, art):
    t = JobTimeline(job_id="j", submitted=0.0, first_launch=0.0, completed=tet)
    m = compute_metrics(name, [t])
    # compute_metrics derives art == tet for a single job; rebuild with two
    # jobs when a distinct ART is needed.
    return m


def test_normalize_all_ratios():
    rows = [metrics("FIFO", 200, 200), metrics("S3", 100, 100)]
    normalized = normalize_all(rows, baseline_name="S3")
    by_name = {m.scheduler: (tet, art) for m, tet, art in normalized}
    assert by_name["FIFO"] == (2.0, 2.0)
    assert by_name["S3"] == (1.0, 1.0)


def test_normalize_missing_baseline():
    with pytest.raises(ExperimentError, match="baseline"):
        normalize_all([metrics("FIFO", 200, 200)], baseline_name="S3")


def test_format_table_contains_all_rows():
    rows = [metrics("FIFO", 200, 200), metrics("S3", 100, 100)]
    text = format_table("My title", rows)
    assert "My title" in text
    assert "FIFO" in text and "S3" in text
    assert "2.00" in text and "1.00" in text


def test_format_series():
    text = format_series("Fig", "n", [1, 2], {"tet": [10.0, 20.0]})
    assert "Fig" in text and "tet" in text
    assert "10.0" in text and "20.0" in text


def test_format_series_length_mismatch():
    with pytest.raises(ExperimentError):
        format_series("Fig", "n", [1, 2], {"tet": [10.0]})
