"""Public API surface checks: the names a downstream user imports exist."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


#: The blessed top-level surface, pinned: adding a name here is a
#: deliberate API decision, removing one is a breaking change.
BLESSED = [
    "BlockStore", "BlockStoreProtocol", "ClusterConfig", "CostModel",
    "DfsConfig", "ExecutionConfig", "FifoLocalRunner", "FifoScheduler",
    "JobSpec", "LocalJob", "MRShareScheduler", "MetricsRegistry",
    "RunReport", "S3Config", "S3Scheduler", "ShardedBlockStore",
    "SharedScanRunner", "SimulationDriver", "TraceConfig", "TraceSession",
    "Tracer", "__version__", "compute_metrics", "format_table",
]


def test_top_level_exports():
    assert sorted(repro.__all__) == BLESSED
    for name in repro.__all__:
        assert getattr(repro, name) is not None


@pytest.mark.parametrize("module_name", [
    "repro.common", "repro.simengine", "repro.cluster", "repro.dfs",
    "repro.mapreduce", "repro.schedulers", "repro.schedulers.s3",
    "repro.localrt", "repro.workloads", "repro.metrics", "repro.planning",
    "repro.experiments", "repro.ext", "repro.obs", "repro.service",
])
def test_subpackage_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), module_name
    for name in module.__all__:
        assert getattr(module, name) is not None, f"{module_name}.{name}"


def test_minimal_user_journey():
    """The README quickstart snippet, condensed."""
    from repro import JobSpec, S3Scheduler, SimulationDriver, compute_metrics
    from repro.mapreduce import normal_wordcount

    driver = SimulationDriver(S3Scheduler())
    driver.register_file("corpus.txt", 160 * 1024)
    profile = normal_wordcount()
    jobs = [JobSpec(job_id=f"j{i}", file_name="corpus.txt", profile=profile)
            for i in range(3)]
    driver.submit_all(jobs, [0.0, 30.0, 60.0])
    metrics = compute_metrics("S3", driver.run().timelines)
    assert metrics.num_jobs == 3
    assert metrics.tet > 0


def test_local_runtime_journey(tmp_path):
    """Canonical local-runtime construction: one config, one runner."""
    from repro import BlockStore, ExecutionConfig, SharedScanRunner
    from repro.localrt import wordcount_job

    store = BlockStore.create(tmp_path / "corpus",
                              ["the cat sat on the mat"] * 50,
                              block_size_bytes=96)
    runner = SharedScanRunner(store, ExecutionConfig(blocks_per_segment=2))
    report = runner.run([wordcount_job("wc", ".*")])
    assert report.result("wc").output
    assert report.blocks_read == store.num_blocks
