"""Public API surface checks: the names a downstream user imports exist."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


@pytest.mark.parametrize("module_name", [
    "repro.common", "repro.simengine", "repro.cluster", "repro.dfs",
    "repro.mapreduce", "repro.schedulers", "repro.schedulers.s3",
    "repro.localrt", "repro.workloads", "repro.metrics", "repro.planning",
    "repro.experiments", "repro.ext",
])
def test_subpackage_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), module_name
    for name in module.__all__:
        assert getattr(module, name) is not None, f"{module_name}.{name}"


def test_minimal_user_journey():
    """The README quickstart snippet, condensed."""
    from repro import JobSpec, S3Scheduler, SimulationDriver, compute_metrics
    from repro.mapreduce import normal_wordcount

    driver = SimulationDriver(S3Scheduler())
    driver.register_file("corpus.txt", 160 * 1024)
    profile = normal_wordcount()
    jobs = [JobSpec(job_id=f"j{i}", file_name="corpus.txt", profile=profile)
            for i in range(3)]
    driver.submit_all(jobs, [0.0, 30.0, 60.0])
    metrics = compute_metrics("S3", driver.run().timelines)
    assert metrics.num_jobs == 3
    assert metrics.tet > 0
