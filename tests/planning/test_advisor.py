"""Planning advisor tests: analytic predictions vs simulation."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.base import run_scheduler
from repro.experiments.paperconfig import (
    dense_pattern,
    paper_cost_model,
    sparse_pattern,
)
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import normal_wordcount
from repro.planning.advisor import advise, format_recommendation, predict_fifo
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.s3 import S3Scheduler

GEOMETRY = dict(profile=normal_wordcount(), cost=paper_cost_model(),
                num_blocks=2560, block_mb=64.0, map_slots=40)


def simulate(scheduler, arrivals):
    jobs = [JobSpec(job_id=f"j{i}", file_name="f",
                    profile=GEOMETRY["profile"])
            for i in range(len(arrivals))]
    metrics, _ = run_scheduler(scheduler, jobs, arrivals,
                               file_name="f", file_size_mb=2560 * 64.0)
    return metrics


@pytest.mark.parametrize("pattern", [sparse_pattern, dense_pattern],
                         ids=["sparse", "dense"])
def test_fifo_prediction_matches_simulation(pattern):
    arrivals = pattern()
    predicted = predict_fifo(arrivals, **GEOMETRY)
    simulated = simulate(FifoScheduler(), arrivals)
    assert predicted.tet == pytest.approx(simulated.tet, rel=0.02)
    assert predicted.art == pytest.approx(simulated.art, rel=0.02)


@pytest.mark.parametrize("pattern", [sparse_pattern, dense_pattern],
                         ids=["sparse", "dense"])
def test_s3_prediction_matches_simulation(pattern):
    arrivals = pattern()
    recommendation = advise(arrivals, **GEOMETRY)
    predicted = recommendation.prediction("S3")
    simulated = simulate(S3Scheduler(), arrivals)
    assert predicted.tet == pytest.approx(simulated.tet, rel=0.02)
    assert predicted.art == pytest.approx(simulated.art, rel=0.02)


def test_sparse_workload_recommends_s3():
    """On the paper's sparse pattern S3 wins ART outright and the overall
    recommendation follows."""
    recommendation = advise(sparse_pattern(), **GEOMETRY)
    assert recommendation.best_art == "S3"
    assert recommendation.overall == "S3"


def test_dense_workload_batching_wins_tet():
    """All-at-once arrivals: a single optimal batch minimises TET (the
    paper's Figure 4(b) MRS1 result, reproduced analytically)."""
    recommendation = advise([0.0] * 10, **GEOMETRY)
    assert recommendation.best_tet.startswith("MRShare-opt")
    fifo = recommendation.prediction("FIFO")
    batch = recommendation.prediction("MRShare-opt[tet]")
    assert batch.tet < fifo.tet / 5


def test_singleton_workload_near_tie():
    recommendation = advise([0.0], **GEOMETRY)
    tets = [p.tet for p in recommendation.predictions]
    assert max(tets) <= min(tets) * 1.15


def test_format_recommendation():
    text = format_recommendation(advise(sparse_pattern(), **GEOMETRY))
    assert "best ART: S3" in text and "FIFO" in text


def test_unknown_policy_lookup():
    recommendation = advise([0.0, 10.0], **GEOMETRY)
    with pytest.raises(ExperimentError):
        recommendation.prediction("ghost")


def test_empty_arrivals_rejected():
    with pytest.raises(ExperimentError):
        advise([], **GEOMETRY)
