"""NameNode namespace tests."""

import pytest

from repro.common.config import DfsConfig
from repro.common.errors import DfsError
from repro.dfs.namenode import NameNode
from repro.dfs.placement import RoundRobinPlacement

NODES = [f"n{i}" for i in range(4)]


@pytest.fixture
def namenode() -> NameNode:
    return NameNode(DfsConfig(block_size_mb=64.0, replication=1),
                    RoundRobinPlacement(NODES))


def test_create_splits_into_blocks(namenode):
    f = namenode.create_file("f", 256.0)
    assert f.num_blocks == 4
    assert all(b.size_mb == 64.0 for b in f.blocks)


def test_final_block_ragged(namenode):
    f = namenode.create_file("f", 100.0)
    assert f.num_blocks == 2
    assert f.blocks[0].size_mb == 64.0
    assert f.blocks[1].size_mb == pytest.approx(36.0)
    assert f.size_mb == pytest.approx(100.0)


def test_small_file_single_block(namenode):
    f = namenode.create_file("tiny", 1.0)
    assert f.num_blocks == 1
    assert f.blocks[0].size_mb == 1.0


def test_exact_multiple_has_no_empty_block(namenode):
    f = namenode.create_file("f", 128.0)
    assert f.num_blocks == 2


def test_duplicate_create_rejected(namenode):
    namenode.create_file("f", 64.0)
    with pytest.raises(DfsError, match="exists"):
        namenode.create_file("f", 64.0)


def test_non_positive_size_rejected(namenode):
    with pytest.raises(DfsError):
        namenode.create_file("f", 0.0)


def test_get_missing_file(namenode):
    with pytest.raises(DfsError, match="no such file"):
        namenode.get_file("ghost")


def test_exists_and_delete(namenode):
    namenode.create_file("f", 64.0)
    assert namenode.exists("f")
    namenode.delete("f")
    assert not namenode.exists("f")
    with pytest.raises(DfsError):
        namenode.delete("f")


def test_list_files_sorted(namenode):
    for name in ("b", "a", "c"):
        namenode.create_file(name, 64.0)
    assert namenode.list_files() == ["a", "b", "c"]


def test_block_locations_round_robin(namenode):
    namenode.create_file("f", 64.0 * 6)
    assert namenode.block_locations("f", 0) == ("n0",)
    assert namenode.block_locations("f", 5) == ("n1",)
