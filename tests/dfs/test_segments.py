"""Segment plan and circular-order tests (the S3 storage layer)."""

import pytest

from repro.common.config import DfsConfig
from repro.common.errors import DfsError
from repro.dfs.namenode import NameNode
from repro.dfs.placement import RoundRobinPlacement
from repro.dfs.segments import SegmentPlan


def make_file(num_blocks: int):
    namenode = NameNode(DfsConfig(block_size_mb=64.0),
                        RoundRobinPlacement(["n0", "n1"]))
    return namenode.create_file("f", 64.0 * num_blocks)


def test_even_segmentation():
    plan = SegmentPlan(make_file(12), 4)
    assert plan.num_segments == 3
    assert all(seg.num_blocks == 4 for seg in plan.segments)
    assert plan.segment(1).block_indices == (4, 5, 6, 7)


def test_ragged_final_segment():
    plan = SegmentPlan(make_file(10), 4)
    assert plan.num_segments == 3
    assert plan.segment(2).block_indices == (8, 9)


def test_segment_of_block():
    plan = SegmentPlan(make_file(10), 4)
    assert plan.segment_of_block(0) == 0
    assert plan.segment_of_block(7) == 1
    assert plan.segment_of_block(9) == 2
    with pytest.raises(DfsError):
        plan.segment_of_block(10)


def test_invalid_blocks_per_segment():
    with pytest.raises(DfsError):
        SegmentPlan(make_file(4), 0)


def test_next_segment_wraps():
    plan = SegmentPlan(make_file(12), 4)
    assert plan.next_segment(0) == 1
    assert plan.next_segment(2) == 0


def test_circular_order_is_permutation():
    plan = SegmentPlan(make_file(20), 4)  # 5 segments
    for start in range(5):
        order = plan.circular_order(start)
        assert sorted(order) == list(range(5))
        assert order[0] == start
        # Consecutive elements step by one, modulo k.
        assert all((b - a) % 5 == 1 for a, b in zip(order, order[1:]))


def test_segments_between_counts_inclusive():
    plan = SegmentPlan(make_file(20), 4)  # 5 segments
    assert plan.segments_between(2, 2) == 1   # just finished its first
    assert plan.segments_between(2, 4) == 3
    assert plan.segments_between(2, 1) == 5   # wrapped all the way


def test_is_last_segment_for():
    plan = SegmentPlan(make_file(20), 4)
    assert plan.is_last_segment_for(2, 1)
    assert not plan.is_last_segment_for(2, 3)
    assert plan.is_last_segment_for(0, 4)


def test_validates_segment_index():
    plan = SegmentPlan(make_file(8), 4)
    with pytest.raises(DfsError):
        plan.segment(2)
    with pytest.raises(DfsError):
        plan.circular_order(9)


def test_single_segment_file():
    plan = SegmentPlan(make_file(3), 10)
    assert plan.num_segments == 1
    assert plan.circular_order(0) == [0]
    assert plan.is_last_segment_for(0, 0)
