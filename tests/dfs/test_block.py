"""Block and DfsFile invariant tests."""

import pytest

from repro.common.errors import DfsError
from repro.dfs.block import Block, DfsFile


def make_block(index=0, size=64.0, file_name="f", locations=("n0",)):
    return Block(block_id=f"f#blk_{index:05d}", file_name=file_name,
                 index=index, size_mb=size, locations=tuple(locations))


def test_block_validates_size():
    with pytest.raises(DfsError):
        make_block(size=0)


def test_block_requires_replica():
    with pytest.raises(DfsError):
        make_block(locations=())


def test_block_negative_index():
    with pytest.raises(DfsError):
        make_block(index=-1)


def test_primary_location():
    block = make_block(locations=("n3", "n5"))
    assert block.primary_location == "n3"


def test_file_aggregates():
    blocks = tuple(make_block(i) for i in range(3))
    f = DfsFile(name="f", blocks=blocks)
    assert f.num_blocks == 3
    assert f.size_mb == 192.0
    assert f.block(1).index == 1


def test_file_block_out_of_range():
    f = DfsFile(name="f", blocks=(make_block(0),))
    with pytest.raises(DfsError, match="no index"):
        f.block(5)


def test_file_rejects_gapped_indices():
    blocks = (make_block(0), make_block(2))
    with pytest.raises(DfsError, match="block index"):
        DfsFile(name="f", blocks=blocks)


def test_file_rejects_foreign_blocks():
    blocks = (make_block(0, file_name="other"),)
    with pytest.raises(DfsError, match="belongs to"):
        DfsFile(name="f", blocks=blocks)


def test_empty_file_rejected():
    with pytest.raises(DfsError):
        DfsFile(name="f", blocks=())
