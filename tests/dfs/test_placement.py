"""Replica placement policy tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.topology import Topology
from repro.common.errors import DfsError
from repro.dfs.placement import (RackAwarePlacement, RoundRobinPlacement,
                                 replica_shards)

NODES = [f"n{i}" for i in range(6)]
TOPO = Topology({"n0": "r0", "n1": "r0", "n2": "r0",
                 "n3": "r1", "n4": "r1", "n5": "r1"})


def test_round_robin_spreads_evenly():
    policy = RoundRobinPlacement(NODES)
    placements = [policy.place(i, 1)[0] for i in range(12)]
    # Each node hosts exactly two of twelve blocks.
    assert all(placements.count(n) == 2 for n in NODES)


def test_round_robin_replication_distinct():
    policy = RoundRobinPlacement(NODES)
    replicas = policy.place(4, 3)
    assert len(set(replicas)) == 3
    assert replicas[0] == "n4"


def test_round_robin_replication_exceeding_nodes():
    with pytest.raises(DfsError):
        RoundRobinPlacement(NODES).place(0, 7)


def test_round_robin_needs_nodes():
    with pytest.raises(DfsError):
        RoundRobinPlacement([])


def test_rack_aware_second_replica_off_rack():
    policy = RackAwarePlacement(NODES, TOPO)
    for block in range(12):
        replicas = policy.place(block, 2)
        assert TOPO.rack_of(replicas[0]) != TOPO.rack_of(replicas[1])


def test_rack_aware_third_replica_near_second():
    policy = RackAwarePlacement(NODES, TOPO)
    for block in range(12):
        replicas = policy.place(block, 3)
        assert len(set(replicas)) == 3
        assert TOPO.rack_of(replicas[1]) == TOPO.rack_of(replicas[2])


def test_rack_aware_many_replicas_distinct():
    policy = RackAwarePlacement(NODES, TOPO)
    replicas = policy.place(3, 5)
    assert len(set(replicas)) == 5


def test_rack_aware_replication_exceeding_nodes():
    with pytest.raises(DfsError):
        RackAwarePlacement(NODES, TOPO).place(0, 7)


# ------------------------------------------------- canonical replica ring

def test_replica_shards_primary_and_ring_order():
    assert replica_shards(0, 4, 2) == (0, 1)
    assert replica_shards(5, 4, 2) == (1, 2)
    assert replica_shards(3, 4, 3) == (3, 0, 1)


def test_replica_shards_validation():
    with pytest.raises(DfsError):
        replica_shards(-1, 4, 2)
    with pytest.raises(DfsError):
        replica_shards(0, 0, 1)
    with pytest.raises(DfsError):
        replica_shards(0, 4, 5)
    with pytest.raises(DfsError):
        replica_shards(0, 4, 0)


def test_round_robin_delegates_to_replica_shards():
    policy = RoundRobinPlacement(NODES)
    for block in range(12):
        expected = tuple(NODES[s] for s in
                         replica_shards(block, len(NODES), 3))
        assert policy.place(block, 3) == expected


@given(block=st.integers(min_value=0, max_value=10_000),
       num_shards=st.integers(min_value=1, max_value=64),
       data=st.data())
def test_every_block_gets_exactly_r_distinct_shards(block, num_shards, data):
    replication = data.draw(st.integers(min_value=1, max_value=num_shards))
    shards = replica_shards(block, num_shards, replication)
    assert len(shards) == replication
    assert len(set(shards)) == replication  # all distinct
    assert all(0 <= s < num_shards for s in shards)
    assert shards[0] == block % num_shards  # primary pinned
