"""Replica placement policy tests."""

import pytest

from repro.cluster.topology import Topology
from repro.common.errors import DfsError
from repro.dfs.placement import RackAwarePlacement, RoundRobinPlacement

NODES = [f"n{i}" for i in range(6)]
TOPO = Topology({"n0": "r0", "n1": "r0", "n2": "r0",
                 "n3": "r1", "n4": "r1", "n5": "r1"})


def test_round_robin_spreads_evenly():
    policy = RoundRobinPlacement(NODES)
    placements = [policy.place(i, 1)[0] for i in range(12)]
    # Each node hosts exactly two of twelve blocks.
    assert all(placements.count(n) == 2 for n in NODES)


def test_round_robin_replication_distinct():
    policy = RoundRobinPlacement(NODES)
    replicas = policy.place(4, 3)
    assert len(set(replicas)) == 3
    assert replicas[0] == "n4"


def test_round_robin_replication_exceeding_nodes():
    with pytest.raises(DfsError):
        RoundRobinPlacement(NODES).place(0, 7)


def test_round_robin_needs_nodes():
    with pytest.raises(DfsError):
        RoundRobinPlacement([])


def test_rack_aware_second_replica_off_rack():
    policy = RackAwarePlacement(NODES, TOPO)
    for block in range(12):
        replicas = policy.place(block, 2)
        assert TOPO.rack_of(replicas[0]) != TOPO.rack_of(replicas[1])


def test_rack_aware_third_replica_near_second():
    policy = RackAwarePlacement(NODES, TOPO)
    for block in range(12):
        replicas = policy.place(block, 3)
        assert len(set(replicas)) == 3
        assert TOPO.rack_of(replicas[1]) == TOPO.rack_of(replicas[2])


def test_rack_aware_many_replicas_distinct():
    policy = RackAwarePlacement(NODES, TOPO)
    replicas = policy.place(3, 5)
    assert len(set(replicas)) == 5


def test_rack_aware_replication_exceeding_nodes():
    with pytest.raises(DfsError):
        RackAwarePlacement(NODES, TOPO).place(0, 7)
