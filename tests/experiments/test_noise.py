"""Duration-noise sensitivity tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.extended import run_noise_sensitivity


@pytest.fixture(scope="module")
def result():
    return run_noise_sensitivity(jitter=0.10, seeds=(1, 2, 3))


def test_art_ordering_robust_to_noise(result):
    """S3's ART advantage — the paper's headline — holds in every seed."""
    for tet_ratio, art_ratio in result.extra["ratios"]["FIFO"]:
        assert art_ratio > 2.0
    for tet_ratio, art_ratio in result.extra["ratios"]["MRS1"]:
        assert art_ratio > 1.3


def test_fifo_tet_ordering_robust(result):
    for tet_ratio, _ in result.extra["ratios"]["FIFO"]:
        assert tet_ratio > 2.0


def test_iteration_barriers_amplify_noise(result):
    """An honest negative: S3 synchronises every wave, so duration noise
    costs it relatively more than MRShare's single batch — MRS1's TET
    ratio drifts at or below 1.0 under jitter (it was 1.04 without)."""
    for tet_ratio, _ in result.extra["ratios"]["MRS1"]:
        assert tet_ratio < 1.04


def test_validation():
    with pytest.raises(ExperimentError):
        run_noise_sensitivity(jitter=0.0)
    with pytest.raises(ExperimentError):
        run_noise_sensitivity(seeds=())
