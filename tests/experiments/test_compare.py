"""Run-comparison / regression-detection tests."""

import json

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.compare import (
    compare_payloads,
    format_comparison,
    load_result_json,
    main,
    regressions,
)


def payload(experiment_id="fig4x", **tets):
    return {
        "experiment_id": experiment_id,
        "metrics": [
            {"scheduler": name, "tet": tet, "art": tet / 2,
             "max_response": tet, "mean_waiting": 1.0, "num_jobs": 10}
            for name, tet in tets.items()],
    }


def test_identical_runs_have_no_regressions():
    deltas = compare_payloads(payload(FIFO=100.0, S3=50.0),
                              payload(FIFO=100.0, S3=50.0))
    assert len(deltas) == 4  # 2 schedulers x 2 metrics
    assert regressions(deltas) == []


def test_drift_detected():
    deltas = compare_payloads(payload(S3=50.0), payload(S3=60.0))
    flagged = regressions(deltas, tolerance=0.05)
    assert {(d.scheduler, d.metric) for d in flagged} == {
        ("S3", "tet"), ("S3", "art")}
    assert flagged[0].relative == pytest.approx(0.2)


def test_tolerance_respected():
    deltas = compare_payloads(payload(S3=100.0), payload(S3=101.0))
    assert regressions(deltas, tolerance=0.02) == []
    assert regressions(deltas, tolerance=0.005)


def test_mismatched_experiments_rejected():
    with pytest.raises(ExperimentError, match="mismatch"):
        compare_payloads(payload("a", S3=1.0), payload("b", S3=1.0))


def test_only_common_schedulers_compared():
    deltas = compare_payloads(payload(FIFO=100.0, S3=50.0),
                              payload(S3=50.0))
    assert {d.scheduler for d in deltas} == {"S3"}


def test_format_marks_drift():
    deltas = compare_payloads(payload(S3=50.0), payload(S3=80.0))
    text = format_comparison(deltas, tolerance=0.02)
    assert "DRIFT" in text and "+60.0%" in text


def test_load_rejects_garbage(tmp_path):
    bad = tmp_path / "x.json"
    bad.write_text("{}")
    with pytest.raises(ExperimentError, match="not a serialised"):
        load_result_json(bad)
    with pytest.raises(ExperimentError):
        load_result_json(tmp_path / "missing.json")


def test_cli_round_trip(tmp_path, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(payload(S3=50.0)))
    new.write_text(json.dumps(payload(S3=50.4)))
    assert main([str(old), str(new)]) == 0
    new.write_text(json.dumps(payload(S3=75.0)))
    assert main([str(old), str(new)]) == 1
    assert main(["--tolerance", "0.6", str(old), str(new)]) == 0
    assert main([str(old)]) == 2
