"""Extended experiment tests (scheduler landscape, speculation, faults)."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.extended import (
    run_dispatch_ablation,
    run_fault_recovery,
    run_scheduler_landscape,
    run_speculation_ablation,
)


@pytest.fixture(scope="module")
def landscape():
    return run_scheduler_landscape()


def test_landscape_covers_six_policies(landscape):
    names = {m.scheduler for m in landscape.metrics}
    assert names == {"FIFO", "Fair", "Capacity", "MRS-opt[tet]",
                     "MRS-opt[art]", "S3"}


def test_s3_beats_optimal_mrshare_on_art(landscape):
    """Even a cost-optimally grouped MRShare cannot match S3's ART."""
    assert landscape.ratio("MRS-opt[tet]")[1] > 1.2
    assert landscape.ratio("MRS-opt[art]")[1] > 1.1


def test_optimal_mrshare_matches_s3_tet(landscape):
    """The TET-optimal grouping closes the TET gap to within a few %."""
    tet_ratio, _ = landscape.ratio("MRS-opt[tet]")
    assert tet_ratio < 1.05


def test_partial_utilisation_critique_quantified(landscape):
    """Section II.B: splitting the cluster makes each (large) job slower;
    with no sharing the pooled baselines do not beat FIFO here."""
    for policy in ("Fair", "Capacity"):
        tet_ratio, art_ratio = landscape.ratio(policy)
        assert tet_ratio >= landscape.ratio("FIFO")[0] - 0.05
        assert art_ratio > 2.0


@pytest.fixture(scope="module")
def speculation():
    return run_speculation_ablation()


def test_speculation_helps_s3_on_stragglers(speculation):
    s3 = speculation.metric("S3")
    spec = speculation.metric("S3+spec")
    assert spec.tet < s3.tet
    assert spec.art < s3.art
    launched, won = speculation.extra["speculation"]["S3+spec"]
    assert launched > 0 and won > 0


def test_slot_checking_beats_speculation(speculation):
    """S3's own mechanism outperforms generic speculation — the design
    choice the paper makes implicitly by disabling speculative tasks."""
    assert (speculation.metric("S3+check").tet
            < speculation.metric("S3+spec").tet)


def test_fifo_speculation_slot_starved(speculation):
    """FIFO keeps every slot busy, so speculation barely fires."""
    launched, _ = speculation.extra["speculation"]["FIFO+spec"]
    s3_launched, _ = speculation.extra["speculation"]["S3+spec"]
    assert launched < s3_launched / 10


def test_fault_recovery_overhead_bounded():
    result = run_fault_recovery()
    assert result.extra["task_failures"] > 0
    # Recovery costs something but nowhere near a rerun.
    assert 0.0 < result.extra["overhead"] < 0.5


def test_fault_recovery_validation():
    with pytest.raises(ExperimentError):
        run_fault_recovery(failure_prob=1.0)


def test_dispatch_latency_costs_time():
    """Heartbeat assignment measurably inflates TET — the latency that the
    calibrated task_startup_s folds into event-mode durations."""
    result = run_dispatch_ablation()
    assert result.extra["tet_overhead"] > 0.05
    event = result.metric("S3-event")
    heartbeat = result.metric("S3-hb")
    assert heartbeat.art > event.art
