"""Ablation experiment tests."""

import pytest

from repro.experiments.ablation import (
    heterogeneous_cluster,
    run_segment_size_sweep,
    run_slot_check_ablation,
)


@pytest.fixture(scope="module")
def seg_sweep():
    return run_segment_size_sweep(segment_sizes=(10, 40, 80))


def test_segment_sweep_structure(seg_sweep):
    assert seg_sweep.extra["segment_sizes"] == [10, 40, 80]
    assert len(seg_sweep.extra["tet"]) == 3


def test_tiny_segments_underutilise_cluster(seg_sweep):
    """Segments far below the slot count leave map slots idle every wave."""
    tet = dict(zip(seg_sweep.extra["segment_sizes"], seg_sweep.extra["tet"]))
    assert tet[10] > 1.5 * tet[40]


def test_paper_ideal_near_knee(seg_sweep):
    """Going beyond slot-count segments buys little (< 10%)."""
    tet = dict(zip(seg_sweep.extra["segment_sizes"], seg_sweep.extra["tet"]))
    assert tet[80] > 0.9 * tet[40]


def test_heterogeneous_cluster_builder():
    config = heterogeneous_cluster(num_slow=4, slow_speed=0.5)
    assert config.num_nodes == 40
    assert sum(1 for s in config.node_speeds if s == 0.5) == 4


def test_slot_check_improves_straggler_cluster():
    result = run_slot_check_ablation(num_slow=5, slow_speed=0.45)
    base = result.metric("S3")
    checked = result.metric("S3+check")
    assert checked.tet < base.tet
    assert checked.art < base.art
