"""Figure 4 panel harness tests.

The full shape assertions against the paper live in
``tests/integration/test_paper_results.py``; here we cover the harness
mechanics on the two cheapest panels.
"""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.fig4 import panel_specs, run_panel, scheduler_factories


def test_panel_specs_cover_all_six():
    specs = panel_specs()
    assert set(specs) == {"4a", "4b", "4c", "4d", "4e", "4f"}
    assert specs["4d"].block_size_mb == 128.0
    assert specs["4e"].block_size_mb == 32.0
    assert specs["4f"].file_size_mb == 400 * 1024


def test_scheduler_factories_order():
    names = [f().name for f in scheduler_factories()]
    assert names == ["FIFO", "MRS1", "MRS2", "MRS3", "S3"]


def test_unknown_panel_rejected():
    with pytest.raises(ExperimentError):
        run_panel("4z")


@pytest.fixture(scope="module")
def panel_4a():
    return run_panel("4a")


def test_panel_result_structure(panel_4a):
    assert panel_4a.experiment_id == "fig4a"
    assert {m.scheduler for m in panel_4a.metrics} == {
        "FIFO", "MRS1", "MRS2", "MRS3", "S3"}
    assert all(m.num_jobs == 10 for m in panel_4a.metrics)


def test_panel_ratio_helper(panel_4a):
    tet_ratio, art_ratio = panel_4a.ratio("FIFO")
    assert tet_ratio > 1.0 and art_ratio > 1.0
    assert panel_4a.ratio("S3") == (1.0, 1.0)


def test_metric_lookup_unknown(panel_4a):
    with pytest.raises(ExperimentError):
        panel_4a.metric("ghost")


def test_report_contains_normalized_columns(panel_4a):
    assert "TET/S3" in panel_4a.report
    assert "Figure 4a" in panel_4a.report
