"""Registry and CLI tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.cli import main
from repro.experiments.registry import ALL, REGISTRY, get_runner, run_experiment


def test_registry_covers_every_figure_and_table():
    assert {"table1", "fig3", "fig4a", "fig4b", "fig4c", "fig4d", "fig4e",
            "fig4f"} <= set(REGISTRY)
    assert set(ALL) == set(REGISTRY)


def test_get_runner_unknown():
    with pytest.raises(ExperimentError, match="unknown experiment"):
        get_runner("fig99")


def test_run_experiment_by_id():
    result = run_experiment("table1")
    assert result.experiment_id == "table1"


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig4a" in out and "table1" in out


def test_cli_runs_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "[table1] completed" in out


def test_cli_unknown_experiment_fails(capsys):
    assert main(["fig99"]) == 1
    assert "FAILED" in capsys.readouterr().err


def test_cli_no_args_shows_help(capsys):
    assert main([]) == 2
