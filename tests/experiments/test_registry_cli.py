"""Registry and CLI tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.cli import main
from repro.experiments.registry import ALL, REGISTRY, get_runner, run_experiment


def test_registry_covers_every_figure_and_table():
    assert {"table1", "fig3", "fig4a", "fig4b", "fig4c", "fig4d", "fig4e",
            "fig4f"} <= set(REGISTRY)
    assert set(ALL) == set(REGISTRY)


def test_get_runner_unknown():
    with pytest.raises(ExperimentError, match="unknown experiment"):
        get_runner("fig99")


def test_run_experiment_by_id():
    result = run_experiment("table1")
    assert result.experiment_id == "table1"


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig4a" in out and "table1" in out


def test_cli_runs_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "[table1] completed" in out


def test_cli_unknown_experiment_fails(capsys):
    assert main(["fig99"]) == 1
    assert "FAILED" in capsys.readouterr().err


def test_cli_no_args_shows_help(capsys):
    assert main([]) == 2


def test_cli_trace_dir_writes_chrome_trace(tmp_path, capsys):
    """--trace-dir records spans from both clock domains into one file."""
    import json

    assert main(["ext-local", "--trace-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    trace_path = tmp_path / "ext-local.trace.json"
    assert trace_path.exists()
    assert str(trace_path) in captured.err

    document = json.loads(trace_path.read_text(encoding="utf-8"))
    names = {e.get("name") for e in document["traceEvents"]}
    # Top-level experiment span plus local-runtime structure.
    assert "experiment.ext-local" in names
    assert {"s3.run", "s3.iteration", "fifo.job", "map.wave",
            "reduce.job", "io.wave"} <= names


def test_cli_trace_dir_simulator_s3_spans(tmp_path):
    """A simulator experiment exports the paper's S3 decision points."""
    import json

    assert main(["abl-het", "--trace-dir", str(tmp_path)]) == 0
    document = json.loads(
        (tmp_path / "abl-het.trace.json").read_text(encoding="utf-8"))
    names = {e.get("name") for e in document["traceEvents"]}
    assert {"s3.subjob.launch", "s3.slotcheck", "s3.map_wave",
            "s3.segment", "s3.align", "s3.pointer"} <= names


def test_cli_without_trace_dir_writes_nothing(tmp_path, capsys):
    assert main(["ext-local"]) == 0
    assert list(tmp_path.iterdir()) == []
    assert "trace:" not in capsys.readouterr().err
