"""Poisson arrival-rate sweep tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.poisson_sweep import run


@pytest.fixture(scope="module")
def sweep():
    return run(num_jobs=6, gaps_s=(15.0, 150.0, 600.0), seed=7)


def test_saturated_regime_batching_and_s3_tie(sweep):
    """At saturation both sharing policies crush FIFO on TET."""
    assert sweep.extra["S3_tet"][0] < 0.5 * sweep.extra["FIFO_tet"][0]
    assert sweep.extra["MRSopt_tet"][0] < 0.5 * sweep.extra["FIFO_tet"][0]


def test_s3_art_never_worse_than_batching(sweep):
    for s3, mrs in zip(sweep.extra["S3_art"], sweep.extra["MRSopt_art"]):
        assert s3 <= mrs * 1.02


def test_isolated_regime_converges(sweep):
    """With gaps >> job time every policy degenerates to ~FIFO."""
    fifo = sweep.extra["FIFO_tet"][-1]
    assert sweep.extra["MRSopt_tet"][-1] == pytest.approx(fifo, rel=0.02)
    assert sweep.extra["S3_tet"][-1] == pytest.approx(fifo, rel=0.02)


def test_fifo_art_improves_with_sparsity(sweep):
    """Less queueing as arrivals spread out."""
    arts = sweep.extra["FIFO_art"]
    assert arts[0] > arts[-1]


def test_validation():
    with pytest.raises(ExperimentError):
        run(num_jobs=1)
    with pytest.raises(ExperimentError):
        run(gaps_s=())
    with pytest.raises(ExperimentError):
        run(gaps_s=(0.0,))
