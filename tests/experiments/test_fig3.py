"""Figure 3 reproduction tests (combined-job cost)."""

import pytest

from repro.experiments.fig3 import run


@pytest.fixture(scope="module")
def result():
    return run(batch_sizes=(1, 5, 10))


def test_series_lengths(result):
    assert len(result.extra["total_execution_s"]) == 3
    assert result.extra["batch_sizes"] == [1, 5, 10]


def test_monotone_increase(result):
    tet = result.extra["total_execution_s"]
    assert tet == sorted(tet)


def test_paper_headline_ratios(result):
    """At n=10: map +28.8%, reduce +23.5%, TET ~+25.5% (we land ~+27%)."""
    map_ratio = result.extra["avg_map_task_s_ratio"][-1]
    reduce_ratio = result.extra["avg_reduce_task_s_ratio"][-1]
    tet_ratio = result.extra["total_execution_s_ratio"][-1]
    assert map_ratio == pytest.approx(1.288, abs=0.01)
    assert reduce_ratio == pytest.approx(1.235, abs=0.01)
    assert tet_ratio == pytest.approx(1.255, abs=0.05)


def test_overhead_far_below_sequential(result):
    """Combining 10 jobs costs ~1.27x one job, vs 10x sequentially."""
    assert result.extra["total_execution_s_ratio"][-1] < 1.5


def test_report_renders(result):
    assert "Figure 3" in result.report
    assert "1.288" in result.report
