"""Sharded-store shared-scan experiment tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.shard import run


@pytest.fixture(scope="module")
def result():
    return run(num_jobs=4, corpus_bytes=200_000, block_size_bytes=15_000)


def test_saving_matches_single_store(result):
    assert result.extra["saving"] > 0.2
    assert result.extra["saving"] == pytest.approx(
        result.extra["saving_single_store"], abs=0.05)


def test_reads_balance_across_shards(result):
    reads = result.extra["shard_reads"]
    assert len(reads) == result.extra["num_shards"]
    assert sum(reads) == result.extra["rows"]["S3"]["tet_blocks"]
    # Round-robin primaries: no shard serves more than one block above
    # its fair share per full scan pass.
    assert max(reads) - min(reads) <= result.extra["iterations"]


def test_failover_exercised_and_invisible(result):
    failover = result.extra["failover"]
    assert failover["replica_fallback_reads"] > 0
    # The failed shard served fewer reads than its balanced share.
    reads = failover["shard_reads"]
    assert reads[failover["failed_shard"]] < max(reads)
    assert sum(reads) == result.extra["rows"]["S3"]["tet_blocks"]


def test_report_renders(result):
    assert "per-shard read balance" in result.report
    assert "failure drill" in result.report
    assert "shard_00" in result.report


def test_validation():
    with pytest.raises(ExperimentError):
        run(num_jobs=0)
    with pytest.raises(ExperimentError):
        run(num_jobs=99)
    with pytest.raises(ExperimentError):
        run(failed_shard=9)
    with pytest.raises(ExperimentError):
        run(replication=1)
