"""Real-data shared-scan experiment tests."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.local_shared_scan import run


@pytest.fixture(scope="module")
def result():
    return run(num_jobs=4, corpus_bytes=200_000, block_size_bytes=15_000)


def test_s3_reads_less_on_both_metrics(result):
    rows = result.extra["rows"]
    assert rows["S3"]["tet_blocks"] < rows["FIFO"]["tet_blocks"]
    assert rows["S3"]["art_blocks"] < rows["FIFO"]["art_blocks"]
    assert result.extra["saving"] > 0.2


def test_fifo_reads_jobs_times_file(result):
    rows = result.extra["rows"]
    assert rows["FIFO"]["tet_blocks"] == 4 * result.extra["num_blocks"]


def test_s3_reads_at_least_one_full_scan(result):
    rows = result.extra["rows"]
    assert rows["S3"]["tet_blocks"] >= result.extra["num_blocks"]


def test_report_renders(result):
    assert "byte-identical" in result.report
    assert "FIFO" in result.report and "S3" in result.report


def test_single_job_no_saving():
    solo = run(num_jobs=1, corpus_bytes=100_000, block_size_bytes=15_000)
    rows = solo.extra["rows"]
    assert rows["S3"]["tet_blocks"] == rows["FIFO"]["tet_blocks"]
    assert solo.extra["saving"] == pytest.approx(0.0)


def test_validation():
    with pytest.raises(ExperimentError):
        run(num_jobs=0)
    with pytest.raises(ExperimentError):
        run(num_jobs=99)
