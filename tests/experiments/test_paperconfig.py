"""Canonical experiment configuration tests."""

from repro.experiments.paperconfig import (
    dense_pattern,
    paper_cluster_config,
    paper_cost_model,
    paper_dfs_config,
    sparse_pattern,
)


def test_cluster_matches_section_5a():
    config = paper_cluster_config()
    assert config.num_nodes == 40
    assert config.map_slots_per_node == 1
    assert config.total_map_slots == 40
    assert len(config.rack_sizes) == 3
    assert all(10 <= size <= 15 for size in config.rack_sizes)


def test_dfs_defaults_and_sweep():
    assert paper_dfs_config().block_size_mb == 64.0
    assert paper_dfs_config(128.0).block_size_mb == 128.0
    assert paper_dfs_config().replication == 1


def test_sparse_pattern_is_three_groups_of_ten():
    arrivals = sparse_pattern()
    assert len(arrivals) == 10
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    # Two large inter-group gaps, the rest small intra-group spacing.
    large = [g for g in gaps if g > 60]
    assert len(large) == 2


def test_dense_pattern_tight():
    arrivals = dense_pattern()
    assert len(arrivals) == 10
    assert arrivals[-1] - arrivals[0] <= 30.0


def test_cost_model_overheads():
    cost = paper_cost_model()
    assert cost.job_submit_overhead_s > cost.subjob_overhead_s > 0
