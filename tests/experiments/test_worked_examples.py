"""Analytic worked-example model tests (Section III)."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.worked_examples import analytic_two_jobs


def test_example1_numbers():
    """D=100, t2=20: the exact numbers from the paper's Examples 1 and 3."""
    points = analytic_two_jobs(100.0, 20.0)
    assert points["FIFO"].tet == 200 and points["FIFO"].art == 140
    assert points["MRShare"].tet == 120 and points["MRShare"].art == 110
    assert points["S3"].tet == 120 and points["S3"].art == 100


def test_example2_numbers():
    """D=100, t2=80: Examples 2 and 3."""
    points = analytic_two_jobs(100.0, 80.0)
    assert points["FIFO"].tet == 200 and points["FIFO"].art == 110
    assert points["MRShare"].tet == 180 and points["MRShare"].art == 140
    assert points["S3"].tet == 180 and points["S3"].art == 100


def test_s3_art_independent_of_offset():
    """S3's ART equals the single-job duration for any offset."""
    for t2 in (0.0, 25.0, 50.0, 99.0):
        assert analytic_two_jobs(100.0, t2)["S3"].art == 100.0


def test_s3_never_worse_than_mrshare():
    for t2 in (0.0, 30.0, 60.0, 90.0):
        points = analytic_two_jobs(100.0, t2)
        assert points["S3"].tet == points["MRShare"].tet
        assert points["S3"].art <= points["MRShare"].art
        assert points["S3"].tet <= points["FIFO"].tet


def test_validation():
    with pytest.raises(ExperimentError):
        analytic_two_jobs(0.0, 0.0)
    with pytest.raises(ExperimentError):
        analytic_two_jobs(100.0, 100.0)
    with pytest.raises(ExperimentError):
        analytic_two_jobs(100.0, -5.0)
