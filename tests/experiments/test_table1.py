"""Table I reproduction tests."""

import pytest

from repro.experiments.table1 import run


@pytest.fixture(scope="module")
def result():
    return run()


def test_rows_match_paper(result):
    assert result.extra["map_output_records"] == pytest.approx(250e6, rel=0.02)
    assert result.extra["map_output_size_mb"] == pytest.approx(2.4 * 1024,
                                                               rel=0.02)
    assert 60_000 <= result.extra["reduce_output_records"] <= 80_000
    assert result.extra["reduce_output_size_mb"] == pytest.approx(1.5)
    assert result.extra["per_node_mb"] == pytest.approx(4 * 1024)


def test_processing_time_near_paper(result):
    """Paper: ~240s; our calibration includes dispatch latency (~285s)."""
    assert 230 <= result.extra["processing_time_s"] <= 320


def test_report_renders_all_rows(result):
    for fragment in ("Input Size", "Map Output Records", "160.0GB",
                     "~250 million", "Processing Time"):
        assert fragment in result.report
