"""Result serialisation and CLI flag tests."""

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.registry import run_experiment
from repro.experiments.serialize import result_to_dict, result_to_json


@pytest.fixture(scope="module")
def table1_result():
    return run_experiment("table1")


def test_result_to_dict_shape(table1_result):
    payload = result_to_dict(table1_result)
    assert payload["experiment_id"] == "table1"
    assert "report" in payload and "Table I" in payload["report"]
    assert isinstance(payload["extra"], dict)


def test_result_to_json_parses(table1_result):
    parsed = json.loads(result_to_json(table1_result))
    assert parsed["experiment_id"] == "table1"


def test_normalized_block_for_scheduler_results():
    result = run_experiment("fig4a")
    payload = result_to_dict(result)
    assert payload["normalized"]["S3"] == {"tet_ratio": 1.0, "art_ratio": 1.0}
    assert payload["normalized"]["FIFO"]["tet_ratio"] > 1.0


def test_extra_payload_jsonable():
    result = run_experiment("abl-seg")
    parsed = json.loads(result_to_json(result))
    assert parsed["extra"]["segment_sizes"] == [10, 20, 40, 80, 160]


def test_cli_json_flag(capsys):
    assert main(["table1", "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["experiment_id"] == "table1"


def test_cli_report_flag(tmp_path, capsys):
    path = tmp_path / "report.md"
    assert main(["table1", "fig3", "--report", str(path)]) == 0
    text = path.read_text()
    assert "# S3 reproduction" in text
    assert "## table1" in text and "## fig3" in text
