"""Shared fixtures for the test suite.

Most tests run against a deliberately *small* cluster/file geometry (8
nodes, 24-block file) so every scheduler executes multiple waves and
segments in milliseconds; integration tests that need the paper's full
geometry build it explicitly.
"""

from __future__ import annotations

import os

import pytest

from repro.common.config import ClusterConfig, DfsConfig
from repro.localrt.storage import BlockStore
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.job import JobSpec
from repro.mapreduce.profile import JobProfile
from repro.workloads.text import TextCorpusGenerator

# Lock-order checking (repro.analysis.lockgraph) is on for the whole
# suite: any test that nests the runtime locks inconsistently fails with
# a LockOrderError naming the cycle.  The switch is read lazily at the
# first lock acquisition, so setting it here covers every test.
os.environ.setdefault("REPRO_LOCKCHECK", "1")

# Resolve the lockset race detector's switch up front: when the run was
# launched with REPRO_RACECHECK=1 (the CI racecheck job), this turns on
# held-set tracking before any test acquires a lock, so early
# acquisitions are not invisible to later registrations.
from repro.analysis.racecheck import racecheck_enabled  # noqa: E402

racecheck_enabled()


@pytest.fixture
def small_cluster_config() -> ClusterConfig:
    """8 nodes, 2 racks, 1 map + 1 reduce slot each."""
    return ClusterConfig(num_nodes=8, rack_sizes=(4, 4))


@pytest.fixture
def small_dfs_config() -> DfsConfig:
    return DfsConfig(block_size_mb=64.0, replication=1)


@pytest.fixture
def fast_profile() -> JobProfile:
    """A tiny profile: 1 s scan + 0.5 s cpu per 64 MB block, 2 s reduce."""
    return JobProfile(
        name="test-fast",
        scan_rate_mb_s=64.0,
        map_cpu_s_per_mb=0.5 / 64.0,
        task_startup_s=0.1,
        map_share_beta=0.1,
        reduce_total_s=2.0,
        reduce_share_gamma=0.05,
        num_reduce_tasks=4,
    )


@pytest.fixture
def zero_cost_model() -> CostModel:
    """No submission or sub-job overheads (idealised Section III arithmetic)."""
    return CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0)


def make_jobs(profile: JobProfile, count: int, file_name: str = "f",
              prefix: str = "j") -> list[JobSpec]:
    return [JobSpec(job_id=f"{prefix}{i}", file_name=file_name, profile=profile)
            for i in range(count)]


@pytest.fixture
def job_factory():
    return make_jobs


@pytest.fixture(scope="session")
def corpus_store(tmp_path_factory: pytest.TempPathFactory) -> BlockStore:
    """A 10-block synthetic text corpus shared by local-runtime tests.

    Session-scoped for speed; tests must not mutate the underlying files.
    (Read counters are per-test-deltas, so sharing the store is safe.)
    """
    directory = tmp_path_factory.mktemp("corpus")
    generator = TextCorpusGenerator(vocabulary_size=300, seed=123)
    return BlockStore.create(directory, generator.lines(80_000),
                             block_size_bytes=8_000)
