#!/usr/bin/env python
"""Structured data processing: TPC-H lineitem selections (paper Section V.G).

Generates a miniature lineitem table with the real 16-column schema, then
runs three SQL-style selections —

    SELECT * FROM lineitem WHERE l_quantity < VAL

— through the S3 shared-scan runtime with staggered arrivals, plus the
Section V.G aggregation extension: a SUM(extendedprice) GROUP BY returnflag
job executed with collect-at-end vs progressive partial aggregation.

Run:  python examples/selection_tpch.py
"""

import tempfile
from pathlib import Path

from repro.common.config import ExecutionConfig
from repro.ext import compare_collection_schemes
from repro.localrt import (
    BlockStore,
    DelimitedReader,
    SharedScanRunner,
    aggregation_job,
    selection_job,
)
from repro.workloads.tpch import (
    LINEITEM_COLUMNS,
    LineitemGenerator,
    quantity_threshold_for_selectivity,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        table_dir = Path(tmp) / "lineitem"
        generator = LineitemGenerator(seed=42)
        store = BlockStore.create(table_dir, generator.rows_for_bytes(600_000),
                                  block_size_bytes=40_000)
        reader = DelimitedReader("|", expected_fields=len(LINEITEM_COLUMNS))
        print(f"lineitem: {store.num_blocks} blocks, "
              f"{store.total_bytes / 1024:.0f} KiB")

        # --- selections at 10 %, 20 % and 50 % selectivity -----------------
        thresholds = {f"sel-{int(s*100)}": quantity_threshold_for_selectivity(s)
                      for s in (0.10, 0.20, 0.50)}
        jobs = [selection_job(job_id, threshold)
                for job_id, threshold in thresholds.items()]
        arrivals = {job_id: i for i, job_id in enumerate(thresholds)}
        report = SharedScanRunner(
            store, ExecutionConfig(blocks_per_segment=3),
            reader=reader).run(jobs, arrivals)

        total_rows = report.results["sel-10"].map_input_records
        print(f"\n{'query':<8} {'predicate':<18} {'selected':>9} {'measured':>9}")
        print("-" * 48)
        for job_id, threshold in thresholds.items():
            result = report.results[job_id]
            measured = result.reduce_output_records / total_rows
            print(f"{job_id:<8} quantity < {threshold:<7} "
                  f"{result.reduce_output_records:>9} {measured:>8.1%}")

        fifo_bytes = store.total_bytes * len(jobs)
        print(f"\nshared scan read {report.bytes_read} bytes vs "
              f"{fifo_bytes} under FIFO "
              f"({1 - report.bytes_read / fifo_bytes:.0%} saved)")

        # --- Section V.G: progressive partial aggregation ------------------
        comparison = compare_collection_schemes(
            store, lambda: [aggregation_job("agg")],
            reader=reader, blocks_per_segment=3)
        assert comparison.outputs_match(), "aggregation outputs diverged"
        at_end = comparison.at_end.result("agg").reduce_input_values
        prog = comparison.progressive.result("agg").reduce_input_values
        print("\nSUM(extendedprice) GROUP BY returnflag — final merge input:")
        print(f"  collect-at-end: {at_end} values")
        print(f"  progressive:    {prog} values "
              f"({comparison.final_merge_reduction('agg'):.0%} smaller)")
        for flag, total in sorted(comparison.progressive.result("agg").output):
            print(f"    {flag}: {total:,.2f}")


if __name__ == "__main__":
    main()
