#!/usr/bin/env python
"""How job arrival patterns change the FIFO / MRShare / S3 trade-off.

Sweeps arrival density — from fully dense (all jobs at once) to very sparse
(jobs barely overlapping) — over the paper's 160 GB wordcount workload and
prints TET/ART for the three schedulers at each point.  This reproduces the
paper's central qualitative claim (Sections III and V.D):

* dense arrivals: MRShare's single batch is optimal; S3 close behind
  (per-sub-job overhead); FIFO terrible;
* sparse arrivals: batching makes early jobs wait, so MRShare's ART
  degrades while S3 keeps both metrics low;
* very sparse arrivals: nothing overlaps, every scheme converges.

Run:  python examples/arrival_patterns.py
"""

from repro import (
    FifoScheduler,
    JobSpec,
    MRShareScheduler,
    S3Scheduler,
    SimulationDriver,
    compute_metrics,
)
from repro.common.units import gb
from repro.experiments import paper_cost_model
from repro.mapreduce import normal_wordcount
from repro.workloads import uniform

NUM_JOBS = 8

#: Mean inter-arrival gaps to sweep, in seconds (one job ~ 297 s).
GAPS = (0.0, 30.0, 90.0, 180.0, 300.0, 450.0)


def run_one(scheduler, arrivals):
    driver = SimulationDriver(scheduler, cost_model=paper_cost_model())
    driver.register_file("corpus.txt", gb(160))
    profile = normal_wordcount()
    jobs = [JobSpec(job_id=f"j{i}", file_name="corpus.txt", profile=profile)
            for i in range(len(arrivals))]
    driver.submit_all(jobs, arrivals)
    return compute_metrics(scheduler.name, driver.run().timelines)


def main() -> None:
    print(f"{NUM_JOBS} wordcount jobs (~297s each), uniform arrivals\n")
    header = (f"{'gap (s)':>8} | {'FIFO TET/ART':>16} | "
              f"{'MRShare TET/ART':>16} | {'S3 TET/ART':>16}")
    print(header)
    print("-" * len(header))
    for gap in GAPS:
        arrivals = uniform(NUM_JOBS, gap)
        rows = {}
        for scheduler in (FifoScheduler(),
                          MRShareScheduler.single_batch(NUM_JOBS),
                          S3Scheduler()):
            metrics = run_one(scheduler, arrivals)
            rows[metrics.scheduler] = metrics
        def fmt(name):
            m = rows[name]
            return f"{m.tet:7.0f}/{m.art:6.0f}"
        print(f"{gap:>8.0f} | {fmt('FIFO'):>16} | {fmt('MRS1'):>16} | "
              f"{fmt('S3'):>16}")
    print("\nReading: at gap 0 MRShare's single batch wins outright; as the "
          "gap grows its ART\nblows up (early jobs wait for the batch) while "
          "S3 stays low on both metrics.")


if __name__ == "__main__":
    main()
