#!/usr/bin/env python
"""Capacity planning: pick a scheduler analytically, then verify by simulation.

The advisor (``repro.planning``) predicts TET/ART for FIFO, optimally
grouped MRShare and S3 from closed forms and the iteration-replay model —
no event simulation.  This example sweeps arrival density, prints the
advisor's pick at each point, and cross-checks two picks against the full
simulator (the predictions match to within a couple of percent).

Run:  python examples/capacity_planning.py
"""

from repro import JobSpec, S3Scheduler, SimulationDriver, compute_metrics
from repro.experiments import paper_cost_model
from repro.mapreduce import normal_wordcount
from repro.planning import advise, format_recommendation
from repro.workloads import sparse_groups, uniform

GEOMETRY = dict(profile=normal_wordcount(), cost=paper_cost_model(),
                num_blocks=2560, block_mb=64.0, map_slots=40)


def simulate_s3(arrivals):
    driver = SimulationDriver(S3Scheduler(), cost_model=paper_cost_model())
    driver.register_file("f", 2560 * 64.0)
    jobs = [JobSpec(job_id=f"j{i}", file_name="f",
                    profile=GEOMETRY["profile"])
            for i in range(len(arrivals))]
    driver.submit_all(jobs, arrivals)
    return compute_metrics("S3", driver.run().timelines)


def main() -> None:
    print("=== arrival-density sweep (8 jobs, advisor's pick per point) ===")
    print(f"{'gap (s)':>8} {'best TET':>18} {'best ART':>12} {'overall':>10}")
    for gap in (0.0, 60.0, 150.0, 300.0, 600.0):
        recommendation = advise(uniform(8, gap), **GEOMETRY)
        print(f"{gap:>8.0f} {recommendation.best_tet:>18} "
              f"{recommendation.best_art:>12} {recommendation.overall:>10}")

    print("\n=== the paper's sparse pattern, in detail ===")
    arrivals = sparse_groups((3, 3, 4), 200.0, 60.0)
    recommendation = advise(arrivals, **GEOMETRY)
    print(format_recommendation(recommendation))

    print("\n=== cross-check: advisor's S3 numbers vs full simulation ===")
    predicted = recommendation.prediction("S3")
    simulated = simulate_s3(arrivals)
    print(f"predicted TET {predicted.tet:7.1f}s   simulated {simulated.tet:7.1f}s")
    print(f"predicted ART {predicted.art:7.1f}s   simulated {simulated.art:7.1f}s")


if __name__ == "__main__":
    main()
