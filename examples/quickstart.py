#!/usr/bin/env python
"""Quickstart: the paper's Example 1 on the simulated 40-node cluster.

Two identical wordcount jobs over a shared 160 GB file; the second job
arrives when the first is 20 % done.  We run Hadoop FIFO, MRShare batching
and the S3 shared scan scheduler over the *same* workload and print TET
(total execution time) and ART (average response time) for each — the
numbers behind Section III's worked examples.

Run:  python examples/quickstart.py
"""

from repro import (
    FifoScheduler,
    JobSpec,
    MRShareScheduler,
    S3Scheduler,
    SimulationDriver,
    compute_metrics,
)
from repro.common.units import fmt_duration, gb
from repro.mapreduce import CostModel, normal_wordcount


def run_scheduler(scheduler, arrival_offset_s: float):
    """Simulate two shared-input jobs, the second arriving later."""
    driver = SimulationDriver(
        scheduler,
        # Zero overheads: reproduce the idealised arithmetic of Section III.
        cost_model=CostModel(job_submit_overhead_s=0.0, subjob_overhead_s=0.0),
    )
    driver.register_file("corpus.txt", gb(160))

    profile = normal_wordcount()
    jobs = [
        JobSpec(job_id="J1", file_name="corpus.txt", profile=profile,
                tag="wordcount[^th.*]"),
        JobSpec(job_id="J2", file_name="corpus.txt", profile=profile,
                tag="wordcount[.*ing$]"),
    ]
    driver.submit_all(jobs, [0.0, arrival_offset_s])
    result = driver.run()
    return compute_metrics(scheduler.name, result.timelines)


def main() -> None:
    # One job's map phase is 64 waves x 4.2 s ~ 269 s; "20 % in" ~ t=54 s.
    single_job_s = 64 * 4.2 + 16
    offset = 0.2 * single_job_s

    print(f"Two jobs of ~{fmt_duration(single_job_s)} each; "
          f"J2 submitted at t={offset:.0f}s (20% into J1)\n")
    print(f"{'scheduler':<10} {'TET':>10} {'ART':>10}")
    print("-" * 32)
    for scheduler in (FifoScheduler(),
                      MRShareScheduler.single_batch(2),
                      S3Scheduler()):
        metrics = run_scheduler(scheduler, offset)
        print(f"{metrics.scheduler:<10} {fmt_duration(metrics.tet):>10} "
              f"{fmt_duration(metrics.art):>10}")
    print("\nExpected shape (paper Example 1, scaled): FIFO 2.0x/1.4x, "
          "MRShare 1.2x/1.1x, S3 1.2x/1.0x of a single job.")


if __name__ == "__main__":
    main()
