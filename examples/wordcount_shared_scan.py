#!/usr/bin/env python
"""Real shared scanning: pattern-wordcount jobs over actual files on disk.

This example uses the *local runtime* (a genuinely-executing mini-MapReduce
engine) rather than the simulator: it generates a small synthetic text
corpus, stores it as line-aligned blocks (a miniature HDFS), then runs four
pattern-restricted wordcount jobs two ways:

1. FIFO — each job scans every block itself;
2. S3 shared scan — the circular segment loop; jobs are admitted at
   different iterations (staggered arrivals) and share each block read.

Both runs produce byte-identical outputs; the S3 run reads a fraction of
the bytes.  The shared-scan run is then repeated under each map execution
backend (serial / threads / processes) to show the backend knob changes
wall-clock only, never results, and finally with the block cache +
read-ahead prefetcher enabled to show the logical/physical counter split
(logical reads never change; physical disk reads shrink to the misses).
The final (cached) run is traced: it writes ``wordcount.trace.json`` next
to this script — open it at https://ui.perfetto.dev to see the
``s3.iteration`` / ``map.wave`` / ``reduce.job`` span tree.
Run:
python examples/wordcount_shared_scan.py
"""

import tempfile
from pathlib import Path

from repro.common.clock import Stopwatch
from repro.common.config import ExecutionConfig, TraceConfig
from repro.localrt import (
    BlockStore,
    FifoLocalRunner,
    SharedScanRunner,
    wordcount_job,
)
from repro.localrt.parallel import BACKEND_NAMES
from repro.workloads.text import TextCorpusGenerator

#: The paper's modified-wordcount job family: one match pattern per job.
PATTERNS = {
    "wc-th": "^th.*",       # words starting with "th"
    "wc-ing": ".*ing$",     # gerunds
    "wc-vowel": "^[aeiou].*",
    "wc-tion": ".*tion$",
}

#: Job -> admission iteration (staggered arrivals, as in the paper).
ARRIVALS = {"wc-th": 0, "wc-ing": 1, "wc-vowel": 2, "wc-tion": 4}


def make_jobs():
    return [wordcount_job(job_id, pattern)
            for job_id, pattern in PATTERNS.items()]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        corpus_dir = Path(tmp) / "corpus"
        generator = TextCorpusGenerator(vocabulary_size=2000, seed=7)
        store = BlockStore.create(corpus_dir, generator.lines(400_000),
                                  block_size_bytes=25_000)
        print(f"corpus: {store.num_blocks} blocks, "
              f"{store.total_bytes / 1024:.0f} KiB\n")

        config = ExecutionConfig(blocks_per_segment=3)
        fifo = FifoLocalRunner(store, config).run(make_jobs())
        shared = SharedScanRunner(store, config).run(
            make_jobs(), arrival_iterations=ARRIVALS)

        print(f"{'scheme':<12} {'blocks read':>12} {'bytes read':>12}")
        print("-" * 38)
        print(f"{'FIFO':<12} {fifo.blocks_read:>12} {fifo.bytes_read:>12}")
        print(f"{'S3 shared':<12} {shared.blocks_read:>12} {shared.bytes_read:>12}")
        saving = 1 - shared.bytes_read / fifo.bytes_read
        print(f"\nshared scan eliminated {saving:.0%} of the I/O "
              f"({shared.iterations} iterations)\n")

        for job_id in PATTERNS:
            a = dict(fifo.results[job_id].output)
            b = dict(shared.results[job_id].output)
            assert a == b, f"output mismatch for {job_id}"
            top = sorted(b.items(), key=lambda kv: -kv[1])[:3]
            rendered = ", ".join(f"{w}={c}" for w, c in top)
            done = shared.results[job_id].completed_iteration
            print(f"{job_id:<10} (done @ iter {done:>2}) top words: {rendered}")
        print("\noutputs identical between FIFO and shared-scan runs ✓")

        print("\nmap backend comparison (same shared scan, same outputs):")
        reference = {j: shared.results[j].output for j in PATTERNS}
        for backend in BACKEND_NAMES:
            runner = SharedScanRunner(store, ExecutionConfig(
                map_backend=backend, map_workers=4, blocks_per_segment=3))
            watch = Stopwatch()
            report = runner.run(make_jobs(), arrival_iterations=ARRIVALS)
            elapsed = watch.elapsed()
            assert all(report.results[j].output == reference[j]
                       for j in PATTERNS), f"{backend} output mismatch"
            print(f"  {backend:<10} {elapsed:6.2f}s "
                  f"({report.bytes_read} bytes read)")
        print("all backends bit-identical ✓ (speedups need multiple cores)")

        print("\nblock cache + read-ahead (logical vs physical reads):")
        trace_path = Path(__file__).with_name("wordcount.trace.json")
        cached_config = ExecutionConfig(
            blocks_per_segment=3,
            cache_capacity_bytes=store.total_bytes * 2,
            prefetch_depth=3,
            trace=TraceConfig(enabled=True, path=str(trace_path)))
        cached = SharedScanRunner(store, cached_config).run(
            make_jobs(), arrival_iterations=ARRIVALS)
        assert all(cached.results[j].output == reference[j]
                   for j in PATTERNS), "cache changed outputs"
        assert cached.blocks_read == shared.blocks_read, \
            "cache changed the logical counters"
        print(f"  logical blocks read   {cached.io.blocks_read:>6} "
              "(identical to the uncached run)")
        print(f"  physical disk reads   {cached.io.physical_blocks_read:>6}")
        print(f"  prefetched blocks     {cached.io.prefetched_blocks:>6}")
        print(f"  demand hit ratio      {cached.cache_hit_ratio:>6.0%}")
        print("cache/prefetch change *when* bytes move, never results ✓")

        print(f"\ntrace written to {cached.trace_path}")
        print("open it at https://ui.perfetto.dev, or summarise it with:")
        print(f"  python -m repro.obs summary {trace_path.name}")


if __name__ == "__main__":
    main()
