#!/usr/bin/env python
"""Fault tolerance and stragglers: the substrate behind the paper's setup.

The paper's cluster relies on MapReduce's fault tolerance and explicitly
*disables* speculative execution (Section V.A), leaning instead on S3's
own periodical slot checking (Section IV-D.1).  This example makes those
choices visible:

1. runs S3 through task failures and a mid-run tasktracker outage and
   shows the recovery overhead;
2. compares three straggler countermeasures on a heterogeneous cluster —
   nothing, Hadoop speculation, and S3 slot checking — with a per-node
   occupancy Gantt so you can watch the slow nodes drag (or be excluded).

Run:  python examples/fault_tolerance.py
"""

from repro import JobSpec, S3Scheduler, SimulationDriver, compute_metrics
from repro.common import ClusterConfig
from repro.common.units import gb
from repro.experiments import paper_cost_model
from repro.mapreduce import FaultModel, Outage, SpeculationConfig, normal_wordcount
from repro.metrics import render_gantt, slot_utilization
from repro.schedulers import S3Config


def run(scheduler, *, cluster_config=None, fault_model=None,
        speculation=None, num_jobs=4):
    driver = SimulationDriver(
        scheduler,
        cluster_config=cluster_config or ClusterConfig(
            num_nodes=12, rack_sizes=(6, 6)),
        cost_model=paper_cost_model(),
        fault_model=fault_model,
        speculation=speculation)
    driver.register_file("corpus.txt", gb(48))  # 768 blocks over 12 nodes
    profile = normal_wordcount()
    jobs = [JobSpec(job_id=f"j{i}", file_name="corpus.txt", profile=profile)
            for i in range(num_jobs)]
    driver.submit_all(jobs, [i * 60.0 for i in range(num_jobs)])
    return driver.run()


def main() -> None:
    # ---------------------------------------------------- fault recovery
    print("=== S3 under task failures + a tasktracker outage ===")
    clean = run(S3Scheduler())
    faults = FaultModel(
        task_failure_prob=0.03,
        outages=(Outage("node_005", start=120.0, duration=90.0),),
        max_attempts=8, seed=13)
    faulty = run(S3Scheduler(), fault_model=faults)
    clean_m = compute_metrics("clean", clean.timelines)
    faulty_m = compute_metrics("faulty", faulty.timelines)
    print(f"clean : TET {clean_m.tet:7.1f}s  ART {clean_m.art:7.1f}s")
    print(f"faulty: TET {faulty_m.tet:7.1f}s  ART {faulty_m.art:7.1f}s  "
          f"({faulty.task_failures} attempts failed, all jobs recovered)")

    # ----------------------------------------------- straggler handling
    print("\n=== straggler countermeasures (3 nodes at 25% speed) ===")
    speeds = [1.0] * 9 + [0.25] * 3
    straggly = ClusterConfig(num_nodes=12, rack_sizes=(6, 6),
                             node_speeds=speeds)
    spec = SpeculationConfig(enabled=True, check_interval_s=5.0,
                             slowness_factor=1.4, min_completed=8)
    variants = {
        "S3 (nothing)": (S3Scheduler(), None),
        "S3 + speculation": (S3Scheduler(), spec),
        "S3 + slot check": (S3Scheduler(S3Config(
            slot_check_enabled=True, adaptive_segments=True)), None),
    }
    results = {}
    for label, (scheduler, speculation) in variants.items():
        result = run(scheduler, cluster_config=straggly,
                     speculation=speculation)
        metrics = compute_metrics(label, result.timelines)
        util = slot_utilization(result.trace, 12, kind="map")
        extra = (f"  backups={result.speculative_launched}"
                 if result.speculative_launched else "")
        print(f"{label:<18} TET {metrics.tet:7.1f}s  ART {metrics.art:7.1f}s  "
              f"map-slot util {util:.0%}{extra}")
        results[label] = result

    print("\nPer-node map occupancy with slot checking — the checker "
          "benches the\nslow nodes (node_009-011) instead of letting every "
          "wave wait for them:")
    print(render_gantt(results["S3 + slot check"].trace, width=64,
                       max_nodes=12))


if __name__ == "__main__":
    main()
