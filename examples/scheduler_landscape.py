#!/usr/bin/env python
"""The full scheduler landscape, with per-job and cluster analytics.

Runs six policies over the same sparse 10-job wordcount workload —
Hadoop FIFO, the Fair and Capacity schedulers the paper discusses in
Section II.B, a *cost-optimally grouped* MRShare (the missing strong
baseline, via the Pareto DP in ``repro.schedulers.mrshare_opt``) and S3 —
then digs into *why* S3 wins with the analytics layer:

* per-job phase breakdown (waiting vs processing vs shared-scan fraction);
* cluster map-slot utilisation strips per policy.

Run:  python examples/scheduler_landscape.py
"""

from repro.experiments import paper_cost_model, sparse_pattern
from repro.experiments.base import run_scheduler
from repro.mapreduce import JobSpec
from repro.metrics import (
    format_phase_table,
    job_phase_stats,
    mean_sharing_fraction,
    render_utilization_strip,
    slot_utilization,
)
from repro.schedulers import (
    CapacityScheduler,
    FairScheduler,
    FifoScheduler,
    S3Scheduler,
    tag_pool,
)
from repro.schedulers.mrshare_opt import optimal_mrshare
from repro.workloads import normal_workload


def pooled_jobs():
    jobs = normal_workload(10).make_jobs()
    return [JobSpec(job_id=j.job_id, file_name=j.file_name, profile=j.profile,
                    tag=tag_pool(("etl", "adhoc")[i % 2], j.tag))
            for i, j in enumerate(jobs)]


def main() -> None:
    arrivals = sparse_pattern()
    workload = normal_workload(10)
    factories = {
        "FIFO": FifoScheduler,
        "Fair": FairScheduler,
        "Capacity": lambda: CapacityScheduler({"etl": 0.5, "adhoc": 0.5}),
        "MRS-opt": lambda: optimal_mrshare(
            arrivals, profile=workload.profile, cost=paper_cost_model(),
            num_blocks=2560, block_mb=64.0, map_slots=40, objective="tet"),
        "S3": S3Scheduler,
    }
    results = {}
    print(f"{'policy':<9} {'TET':>8} {'ART':>8} {'map util':>9} "
          f"{'shared scan':>12}")
    print("-" * 52)
    for label, factory in factories.items():
        metrics, result = run_scheduler(
            factory(), pooled_jobs(), arrivals,
            file_name=workload.file_name, file_size_mb=workload.file_size_mb)
        util = slot_utilization(result.trace, 40, kind="map")
        sharing = mean_sharing_fraction(result)
        print(f"{label:<9} {metrics.tet:>8.0f} {metrics.art:>8.0f} "
              f"{util:>8.0%} {sharing:>11.0%}")
        results[label] = result

    print("\nmap-slot occupancy over time (one char ~ 1/60 of each run):")
    for label, result in results.items():
        strip = render_utilization_strip(result.trace, 40, width=60)
        print(f"{label:<9} |{strip}|")

    print("\nper-job breakdown under S3 (waiting vs processing, "
          "shared-scan fraction):")
    print(format_phase_table(job_phase_stats(results["S3"])))


if __name__ == "__main__":
    main()
